package server

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"runtime/debug"
	"time"

	"immortaldb"
	"immortaldb/internal/admit"
	"immortaldb/internal/obs"
	"immortaldb/internal/repl"
	"immortaldb/internal/sqlish"
	"immortaldb/internal/wire"
)

// conn is one client connection: a wire-protocol stream plus the sqlish
// session that owns its (at most one) open transaction.
type conn struct {
	srv  *Server
	nc   net.Conn
	sess *sqlish.Session
}

// wakeForDrain pokes a connection blocked in its idle read so the handler
// loop observes the drain. Safe concurrently with the handler: deadlines on
// a net.Conn may be set from any goroutine.
func (c *conn) wakeForDrain() {
	c.nc.SetReadDeadline(c.srv.now())
}

// serve runs the connection until EOF, error, idle timeout or shutdown. A
// panic anywhere in the handler — a parser bug, an engine invariant — kills
// only this connection: the session rolls back, the panic is logged, and
// the server keeps serving everyone else.
func (c *conn) serve() {
	defer c.srv.removeConn(c)
	defer func() {
		if r := recover(); r != nil {
			c.srv.panics.Add(1)
			c.srv.logf("server: connection panic: %v\n%s", r, debug.Stack())
		}
		if c.sess != nil {
			c.sess.Close() // rolls back any open transaction
		}
		c.nc.Close()
	}()

	br := bufio.NewReader(c.nc)
	replHello, ok := c.handshake(br)
	if !ok {
		return
	}
	if replHello != nil {
		// A replication handshake turns the connection over to the segment
		// shipper for its whole life; it never carries statements.
		if err := c.srv.shipper().ServeConn(c.nc, br, replHello, repl.ConnOpts{
			Now:            c.srv.now,
			IdleTimeout:    c.srv.cfg.IdleTimeout,
			RequestTimeout: c.srv.cfg.RequestTimeout,
			Draining:       c.srv.isDraining,
		}); err != nil && !errors.Is(err, io.EOF) {
			c.srv.logf("server: replication connection: %v", err)
		}
		return
	}
	c.sess = sqlish.NewSession(c.srv.db)

	for {
		if !c.armReadDeadline() {
			return
		}
		// Wait for the next request with Peek: it consumes nothing, so the
		// shutdown wake-up (a deadline poke) can interrupt this wait without
		// ever desynchronizing a frame that is mid-arrival.
		if _, err := br.Peek(1); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if c.drainContinue() {
					continue
				}
			}
			return // EOF, idle timeout, drain, or broken pipe
		}
		// A request has started: its frame must arrive, and its response be
		// written, each within one request timeout. Execution in between is
		// bounded by the engine's lock timeout rather than preempted.
		c.nc.SetReadDeadline(c.srv.now().Add(c.srv.cfg.RequestTimeout))
		typ, payload, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		c.nc.SetWriteDeadline(c.srv.now().Add(c.srv.cfg.RequestTimeout))
		switch typ {
		case wire.MsgPing:
			pingStart := obs.Now()
			if err := wire.WriteFrame(c.nc, wire.MsgPong, nil); err != nil {
				return
			}
			obsPingLat.ObserveSince(pingStart)
		case wire.MsgExec:
			c.srv.requests.Add(1)
			stmt := string(payload)
			// The admission gate runs before execution. Requests from a
			// session holding an open transaction outrank new work (they
			// bypass the gate entirely — stalling a lock holder behind fresh
			// arrivals would turn overload into deadlock), and degradation
			// beats overload: a degraded engine answers for itself with the
			// terminal CodeDegraded instead of a shed that lies "retry later".
			var release func()
			if g := c.srv.gate; g != nil && c.srv.db.Degraded() == nil {
				pri := admit.PriorityNew
				if c.sess.InTransaction() {
					pri = admit.PriorityTxn
				}
				rel, aerr := g.Admit(context.Background(), admit.TenantFromStatement(stmt), pri)
				if aerr != nil {
					c.srv.errCount.Add(1)
					c.nc.SetWriteDeadline(c.srv.now().Add(c.srv.cfg.RequestTimeout))
					if werr := c.srv.writeError(c.nc, aerr); werr != nil {
						return
					}
					break
				}
				release = rel
			}
			obsInflight.Inc()
			execStart := obs.Now()
			span := obs.NewRootSpan("server.exec")
			res, err := c.sess.Exec(stmt)
			span.End()
			c.nc.SetWriteDeadline(c.srv.now().Add(c.srv.cfg.RequestTimeout))
			if err != nil {
				c.srv.errCount.Add(1)
				obsExecLat.ObserveSince(execStart)
				obsInflight.Dec()
				werr := c.srv.writeError(c.nc, err)
				if release != nil {
					release()
				}
				if werr != nil {
					return
				}
				break
			}
			werr := wire.WriteFrame(c.nc, wire.MsgResult, res.AppendBinary(nil))
			obsExecLat.ObserveSince(execStart)
			obsInflight.Dec()
			if release != nil {
				release()
			}
			if werr != nil {
				return
			}
		default:
			c.srv.errCount.Add(1)
			if err := c.srv.writeError(c.nc, errors.New("server: unknown message type")); err != nil {
				return
			}
		}
		// A drained connection hangs up once it is between transactions;
		// clients see a clean EOF instead of a mid-transaction abort.
		if c.srv.isDraining() && !c.sess.InTransaction() {
			return
		}
	}
}

// handshake validates the opening frame within one request timeout. A query
// hello is answered here and returns (nil, true); a replication hello is
// returned raw for the shipper to answer as (payload, true).
func (c *conn) handshake(br *bufio.Reader) ([]byte, bool) {
	c.nc.SetDeadline(c.srv.now().Add(c.srv.cfg.RequestTimeout))
	typ, payload, err := wire.ReadFrame(br)
	if err != nil {
		return nil, false
	}
	if typ == wire.MsgReplHello {
		c.nc.SetDeadline(time.Time{})
		return payload, true
	}
	if typ != wire.MsgHello {
		return nil, false
	}
	if _, err := wire.CheckHello(payload); err != nil {
		c.srv.writeError(c.nc, err)
		return nil, false
	}
	if err := wire.WriteFrame(c.nc, wire.MsgHelloOK, []byte{wire.Version}); err != nil {
		return nil, false
	}
	c.nc.SetDeadline(time.Time{})
	return nil, true
}

// armReadDeadline sets the next request's read deadline: the idle timeout,
// clipped during a drain to the shutdown deadline. It returns false when
// the drain deadline has already passed and the connection must close.
func (c *conn) armReadDeadline() bool {
	deadline := c.srv.now().Add(c.srv.cfg.IdleTimeout)
	if c.srv.isDraining() {
		if !c.sess.InTransaction() {
			return false
		}
		until := time.Unix(0, c.srv.drainUntil.Load())
		if !until.After(c.srv.now()) {
			return false
		}
		if until.Before(deadline) {
			deadline = until
		}
	}
	c.nc.SetReadDeadline(deadline)
	return true
}

// drainContinue decides what a read timeout means: during a drain a
// connection with an open transaction keeps going (until the drain
// deadline); anything else — true idle timeout, drained and idle — closes.
func (c *conn) drainContinue() bool {
	if !c.srv.isDraining() || !c.sess.InTransaction() {
		return false
	}
	return time.Unix(0, c.srv.drainUntil.Load()).After(c.srv.now())
}

// writeError sends an error frame, classified so the client knows what a
// retry is worth: degradation is terminal until an operator intervenes,
// shutdown conditions are transient, a write refused by a replica must be
// redirected to the primary (the refusal carries the primary's address when
// the server knows it), an AS OF read past the replication horizon is
// retryable here once the horizon advances, and everything else is a
// statement error.
func (s *Server) writeError(w io.Writer, err error) error {
	code := wire.CodeGeneric
	msg := err.Error()
	switch {
	case errors.Is(err, immortaldb.ErrDegraded):
		code = wire.CodeDegraded
	case errors.Is(err, immortaldb.ErrShuttingDown),
		errors.Is(err, immortaldb.ErrClosed),
		errors.Is(err, immortaldb.ErrAborted):
		code = wire.CodeRetryable
	case errors.Is(err, immortaldb.ErrReplica):
		code = wire.CodeReadOnlyReplica
		msg = wire.RedirectMsg(msg, s.PrimaryAddr())
	case errors.Is(err, immortaldb.ErrBeyondHorizon):
		code = wire.CodeBeyondHorizon
	case errors.Is(err, admit.ErrOverloaded):
		code = wire.CodeOverloaded
		var oe *admit.OverloadError
		if errors.As(err, &oe) {
			msg = wire.OverloadMsg(msg, oe.RetryAfter)
		}
	}
	return wire.WriteFrame(w, wire.MsgError, wire.ErrorPayload(code, msg))
}
