package server

import (
	"context"
	"fmt"
	"strconv"
	"testing"

	"immortaldb"
	"immortaldb/internal/client"
)

// TestServerVacuumHistoryOverWire pins the operator path end to end: VACUUM
// HISTORY sent by a pooled wire client runs a real cold-tier pass and comes
// back as a one-row result set of reclamation counters.
func TestServerVacuumHistoryOverWire(t *testing.T) {
	_, _, addr := startServer(t, t.TempDir(), &immortaldb.Options{
		NoSync:        true,
		TieredHistory: true,
		PageSize:      1024,
		CacheFrames:   32,
	}, Config{})
	pool, err := client.Open(addr, &client.Options{MaxConns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ctx := context.Background()

	if _, err := pool.Exec(ctx, "CREATE IMMORTAL TABLE kv (k INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Exec(ctx, "INSERT INTO kv VALUES (1, 'seed')"); err != nil {
		t.Fatal(err)
	}
	// Pile up history so the pass has pages to migrate.
	for i := 0; i < 40; i++ {
		sql := fmt.Sprintf("UPDATE kv SET v = 'v%03d-padpadpadpadpadpadpadpadpadpad' WHERE k = 1", i)
		if _, err := pool.Exec(ctx, sql); err != nil {
			t.Fatal(err)
		}
	}

	res, err := pool.Exec(ctx, "VACUUM HISTORY")
	if err != nil {
		t.Fatalf("VACUUM HISTORY over wire: %v", err)
	}
	wantCols := []string{"versions_reclaimed", "bytes_reclaimed", "pages_migrated", "runs_merged"}
	if len(res.Columns) != len(wantCols) {
		t.Fatalf("columns = %v, want %v", res.Columns, wantCols)
	}
	for i, c := range wantCols {
		if res.Columns[i] != c {
			t.Fatalf("columns = %v, want %v", res.Columns, wantCols)
		}
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v, want exactly one", res.Rows)
	}
	cells := make(map[string]uint64, len(wantCols))
	for i, cell := range res.Rows[0] {
		n, err := strconv.ParseUint(cell, 10, 64)
		if err != nil {
			t.Fatalf("cell %s = %q, want a number", res.Columns[i], cell)
		}
		cells[res.Columns[i]] = n
	}
	if cells["pages_migrated"] == 0 {
		t.Fatalf("vacuum migrated no pages over the wire: %v", cells)
	}

	// The verb is rejected mid-transaction: it commits its own WAL records.
	sess, err := pool.Session(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Exec(ctx, "BEGIN TRAN"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(ctx, "VACUUM HISTORY"); err == nil {
		t.Fatal("VACUUM HISTORY inside a transaction succeeded, want error")
	}
	if _, err := sess.Exec(ctx, "ROLLBACK"); err != nil {
		t.Fatal(err)
	}
}
