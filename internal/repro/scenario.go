package repro

import (
	"encoding/json"
	"fmt"
	"io"

	"immortaldb/internal/sim"
)

// ScenarioReport is one simulation-scenario run plus everything needed to
// replay it: the scenario name and seed are the complete repro parameters —
// the harness is deterministic, so they reproduce the run bit-for-bit.
type ScenarioReport struct {
	Scenario   string   `json:"scenario"`
	Seed       int64    `json:"seed"`
	Hash       string   `json:"hash"`
	Hash2      string   `json:"hash2,omitempty"`
	Events     int      `json:"events"`
	Ops        int      `json:"ops"`
	Errors     int      `json:"errors"`
	Violations []string `json:"violations,omitempty"`
	// Deterministic is set when the run was executed twice and the trace
	// hashes compared.
	Deterministic *bool `json:"deterministic,omitempty"`
}

// Failed reports whether the run violated an oracle or the determinism
// contract.
func (r *ScenarioReport) Failed() bool {
	return len(r.Violations) > 0 || (r.Deterministic != nil && !*r.Deterministic)
}

// ReproLine is the command that replays this run.
func (r *ScenarioReport) ReproLine() string {
	return fmt.Sprintf("go run ./cmd/simscn -scenario %s -seed %d", r.Scenario, r.Seed)
}

// RunScenario executes one predefined scenario under one seed. With verify
// set, it runs twice and records whether the trace hashes matched.
func RunScenario(name string, seed int64, verify bool) (*ScenarioReport, error) {
	sc, ok := sim.Predefined(name)
	if !ok {
		return nil, fmt.Errorf("repro: unknown scenario %q (have %v)", name, sim.ScenarioNames())
	}
	res, err := sim.Run(sc, seed)
	if err != nil {
		return nil, err
	}
	rep := &ScenarioReport{
		Scenario:   name,
		Seed:       seed,
		Hash:       res.Hash,
		Events:     res.Events,
		Ops:        res.Ops,
		Errors:     res.Errors,
		Violations: res.Violations,
	}
	if verify {
		res2, err := sim.Run(sc, seed)
		if err != nil {
			return nil, err
		}
		rep.Hash2 = res2.Hash
		det := res2.Hash == res.Hash
		rep.Deterministic = &det
	}
	return rep, nil
}

// ScenarioSuite runs every predefined scenario under every seed, streaming
// one report line per run to w. It returns the reports and whether all runs
// passed.
func ScenarioSuite(seeds []int64, verify bool, w io.Writer) ([]*ScenarioReport, bool, error) {
	var reports []*ScenarioReport
	pass := true
	for _, seed := range seeds {
		for _, name := range sim.ScenarioNames() {
			rep, err := RunScenario(name, seed, verify)
			if err != nil {
				return reports, false, err
			}
			reports = append(reports, rep)
			status := "ok"
			if rep.Failed() {
				status = "FAIL"
				pass = false
			}
			fmt.Fprintf(w, "%-10s seed=%-12d %s  ops=%d errs=%d events=%d hash=%s\n",
				rep.Scenario, rep.Seed, status, rep.Ops, rep.Errors, rep.Events, rep.Hash[:16])
			for _, v := range rep.Violations {
				fmt.Fprintf(w, "  violation: %s\n", v)
			}
			if rep.Deterministic != nil && !*rep.Deterministic {
				fmt.Fprintf(w, "  nondeterministic: %s vs %s\n", rep.Hash, rep.Hash2)
			}
			if rep.Failed() {
				fmt.Fprintf(w, "  repro: %s\n", rep.ReproLine())
			}
		}
	}
	return reports, pass, nil
}

// WriteScenarioReports writes reports as JSON (the CI artifact format).
func WriteScenarioReports(w io.Writer, reports []*ScenarioReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}
