package repro

import (
	"testing"
)

// tiny returns options small enough for unit testing (the real sizes run in
// cmd/benchfig5, cmd/benchfig6 and the root benchmarks).
func tiny() Options { return Options{Scale: 0.02, PageSize: 2048, Seed: 1} }

func TestRunFig5Shape(t *testing.T) {
	res, err := RunFig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 16 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Txns <= res.Rows[0].Txns {
		t.Fatal("x axis not increasing")
	}
	if last.ImmortalSec <= 0 || last.ConventionalSec <= 0 {
		t.Fatalf("times missing: %+v", last)
	}
	// Cumulative time must be non-decreasing.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].ImmortalSec < res.Rows[i-1].ImmortalSec {
			t.Fatal("cumulative immortal time decreased")
		}
	}
	if res.BatchedImmortalSec <= 0 {
		t.Fatal("batched case missing")
	}
}

func TestRunFig6Shape(t *testing.T) {
	rows, err := RunFig6(tiny(), []Fig6Mix{{500, 72}, {2000, 18}}, []int{0, 50, 100}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A recent (0%) scan over the 500-insert mix returns fewer records than
	// over the 2000-insert mix ("an as of query that asks about the recent
	// history will have better performance with lower number of inserts,
	// basically because the number of retrieved records is smaller").
	var small, large int
	for _, r := range rows {
		if r.PctHistory == 0 {
			if r.Mix.Inserts == 500 {
				small = r.Rows
			} else if r.Mix.Inserts == 2000 {
				large = r.Rows
			}
		}
		if r.Rows == 0 {
			t.Fatalf("empty scan at %+v", r)
		}
	}
	if small >= large {
		t.Fatalf("row counts: %d (0.5K) vs %d (2K)", small, large)
	}
	if Fig6Label(Fig6Mix{500, 72}) != "0.5K*72" || Fig6Label(Fig6Mix{2000, 18}) != "2K*18" {
		t.Fatal("labels wrong")
	}
}

func TestRunEagerVsLazy(t *testing.T) {
	rows, err := RunEagerVsLazy(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Mode != "lazy" || rows[1].Mode != "eager" {
		t.Fatalf("rows = %+v", rows)
	}
	// Eager logs every stamp: strictly more log bytes than lazy.
	if rows[1].LogBytes <= rows[0].LogBytes {
		t.Fatalf("eager log (%d) not larger than lazy (%d)", rows[1].LogBytes, rows[0].LogBytes)
	}
	// Lazy populates the PTT; eager does not.
	if rows[0].PTTEntries == 0 || rows[1].PTTEntries != 0 {
		t.Fatalf("PTT entries: lazy=%d eager=%d", rows[0].PTTEntries, rows[1].PTTEntries)
	}
}

func TestRunChainVsTSB(t *testing.T) {
	rows, err := RunChainVsTSB(tiny(), []int{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var chainDeepHops, tsbDeepHops uint64
	for _, r := range rows {
		if r.PctHistory == 100 {
			if r.Mode == "chain" {
				chainDeepHops = r.ChainHops
			} else {
				tsbDeepHops = r.ChainHops
			}
		}
	}
	if chainDeepHops == 0 {
		t.Fatal("chain mode deep query did not walk history chains")
	}
	if tsbDeepHops != 0 {
		t.Fatalf("TSB mode walked %d chain pages", tsbDeepHops)
	}
}

func TestRunPTTGC(t *testing.T) {
	rows, err := RunPTTGC(tiny())
	if err != nil {
		t.Fatal(err)
	}
	var gcFinal, noGCFinal uint64
	var noGCTxns int
	for _, r := range rows {
		if r.GC {
			gcFinal = r.PTTEntries
		} else {
			noGCFinal = r.PTTEntries
			noGCTxns = r.Txns
		}
	}
	if noGCFinal < uint64(noGCTxns) {
		t.Fatalf("GC-off PTT entries = %d, want >= %d (one per txn)", noGCFinal, noGCTxns)
	}
	if gcFinal*4 > noGCFinal {
		t.Fatalf("GC ineffective: %d vs %d entries", gcFinal, noGCFinal)
	}
}

func TestRunThreshold(t *testing.T) {
	rows, err := RunThreshold(tiny(), []float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SliceUtil <= 0 || r.SliceUtil > 1 {
			t.Fatalf("utilization out of range: %+v", r)
		}
		if r.CurrentPages == 0 || r.HistPages == 0 {
			t.Fatalf("no splits happened: %+v", r)
		}
	}
}

func TestRunSnapshotBench(t *testing.T) {
	rows, err := RunSnapshotBench(Options{Scale: 0.05, PageSize: 2048, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ReadsDone == 0 {
			t.Fatalf("reader starved: %+v", r)
		}
	}
}

func TestRunHistAblation(t *testing.T) {
	// Scale 0.1 keeps ~1200 txns over ~30 keys: enough versions that time
	// splits produce migratable history pages at 2 KB pages.
	rows, err := RunHistAblation(Options{Scale: 0.1, PageSize: 2048, Seed: 1}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]HistRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	for _, mode := range []string{"asof-hot", "asof-cold", "storage-reduction", "hist-commit"} {
		r, ok := byMode[mode]
		if !ok {
			t.Fatalf("mode %q missing from %+v", mode, rows)
		}
		if r.CommitsPerSec <= 0 {
			t.Fatalf("mode %q has no measurement: %+v", mode, r)
		}
	}
	// The acceptance floor: migrated pages must shed at least 2/3 of their
	// bytes on the way into the compressed runs. Byte counts are
	// deterministic for a given seed and scale, so this is not a timing
	// assertion.
	if red := byMode["storage-reduction"]; red.CommitsPerSec < MinStorageReduction {
		t.Fatalf("storage reduction %.2fx below the %.0fx floor (%d pages -> %d cold bytes)",
			red.CommitsPerSec, MinStorageReduction, red.PagesMigrated, red.ColdBytes)
	}
}
