// Package repro regenerates the paper's evaluation (Section 5): the
// transaction-overhead experiment of Figure 5, the AS OF query experiment of
// Figure 6, and the ablations DESIGN.md catalogues (eager vs lazy
// timestamping, chain vs TSB-tree historical access, PTT garbage collection,
// and the key-split threshold). The cmd/benchfig5 and cmd/benchfig6 binaries
// and the root bench_test.go both drive this package.
package repro

import (
	"fmt"
	"os"
	"sort"
	"time"

	"immortaldb"
	"immortaldb/internal/itime"
	"immortaldb/internal/workload"
)

// Options shape an experiment run.
type Options struct {
	// Scale multiplies transaction counts; 1.0 reproduces the paper's sizes
	// (32,000 / 36,000 transactions). Benchmarks may scale down.
	Scale float64
	// PageSize for the engine (default 8192, the paper's).
	PageSize int
	// Seed for the moving-objects generator.
	Seed int64
	// CacheFrames bounds the buffer pool (0 = engine default). The paper's
	// historical-query results are I/O-bound; a cache smaller than the
	// accumulated history reproduces that regime.
	CacheFrames int
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.PageSize == 0 {
		o.PageSize = 8192
	}
	return o
}

func (o Options) scaled(n int) int {
	v := int(float64(n) * o.Scale)
	if v < 10 {
		v = 10
	}
	return v
}

// Env is a database prepared for an experiment.
type Env struct {
	DB    *immortaldb.DB
	Table *immortaldb.Table
	Clock *itime.SimClock
	dir   string
}

// Close releases the environment.
func (e *Env) Close() error {
	err := e.DB.Close()
	os.RemoveAll(e.dir)
	return err
}

// NewEnv opens a fresh benchmark database with a deterministic clock that
// advances one 20 ms tick every few transactions, so the sequence-number
// machinery is exercised exactly as in a busy real system.
func NewEnv(o Options, immortal bool, mutate func(*immortaldb.Options)) (*Env, error) {
	o = o.withDefaults()
	dir, err := os.MkdirTemp("", "immortaldb-bench")
	if err != nil {
		return nil, err
	}
	clock := itime.NewSimClock(time.Date(2004, 8, 12, 10, 0, 0, 0, time.UTC))
	clock.AutoStep = 1
	clock.AutoEvery = 5
	dbOpts := &immortaldb.Options{
		PageSize:    o.PageSize,
		CacheFrames: o.CacheFrames,
		NoSync:      true, // measure engine cost, not disk latency
		Clock:       clock,
	}
	if mutate != nil {
		mutate(dbOpts)
	}
	db, err := immortaldb.Open(dir, dbOpts)
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	tbl, err := db.CreateTable("MovingObjects", immortaldb.TableOptions{Immortal: immortal})
	if err != nil {
		db.Close()
		os.RemoveAll(dir)
		return nil, err
	}
	return &Env{DB: db, Table: tbl, Clock: clock, dir: dir}, nil
}

// ApplyOp runs one moving-objects operation as its own transaction — the
// paper's worst case ("each transaction updates or inserts only one single
// record").
func ApplyOp(e *Env, op workload.Op) error {
	tx, err := e.DB.Begin(immortaldb.Serializable)
	if err != nil {
		return err
	}
	if err := tx.Set(e.Table, workload.Key(op.OID), workload.Value(op.Pos)); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// ApplyStream applies a stream one-transaction-per-op and returns the commit
// timestamps in order.
func ApplyStream(e *Env, ops []workload.Op) ([]immortaldb.Timestamp, error) {
	times := make([]immortaldb.Timestamp, 0, len(ops))
	for _, op := range ops {
		if err := ApplyOp(e, op); err != nil {
			return nil, err
		}
		times = append(times, e.DB.Now())
	}
	return times, nil
}

// ---------------------------------------------------------------- Figure 5

// Fig5Row is one x-axis point of Figure 5: cumulative elapsed time to
// execute the first Txns transactions.
type Fig5Row struct {
	Txns            int
	ImmortalSec     float64
	ConventionalSec float64
	OverheadPct     float64
}

// Fig5Result is the regenerated Figure 5 plus the Section 5.1 headline
// numbers.
type Fig5Result struct {
	Rows []Fig5Row
	// Per-transaction averages at the largest point (the paper reports
	// 9.6 ms conventional + 1.1 ms Immortal DB overhead ≈ 11%).
	ConvPerTxnMs     float64
	ImmortalPerTxnMs float64
	OverheadPct      float64
	// BatchedImmortalSec is the lowest-overhead case: all records in ONE
	// transaction ("indistinguishable from non-timestamped updates").
	BatchedImmortalSec     float64
	BatchedConventionalSec float64
}

// RunFig5 regenerates Figure 5: up to 32,000 single-record transactions
// (500 inserts, the rest updates) against a transaction-time table and a
// conventional table.
func RunFig5(o Options) (*Fig5Result, error) {
	o = o.withDefaults()
	total := o.scaled(32000)
	inserts := o.scaled(500)
	ops, err := workload.New(workload.Config{Seed: o.Seed}).Stream(inserts, total)
	if err != nil {
		return nil, err
	}
	points := fig5Points(total)

	run := func(immortal bool) ([]float64, error) {
		e, err := NewEnv(o, immortal, nil)
		if err != nil {
			return nil, err
		}
		defer e.Close()
		var cum []float64
		start := time.Now()
		next := 0
		for i, op := range ops {
			if err := ApplyOp(e, op); err != nil {
				return nil, err
			}
			if next < len(points) && i+1 == points[next] {
				cum = append(cum, time.Since(start).Seconds())
				next++
			}
		}
		return cum, nil
	}

	// Two runs per arm, best-of (cumulative timings on a shared machine are
	// noisy; the minimum is the least-disturbed run).
	runBest := func(immortal bool) ([]float64, error) {
		best, err := run(immortal)
		if err != nil {
			return nil, err
		}
		again, err := run(immortal)
		if err != nil {
			return nil, err
		}
		for i := range best {
			if again[i] < best[i] {
				best[i] = again[i]
			}
		}
		return best, nil
	}
	imm, err := runBest(true)
	if err != nil {
		return nil, err
	}
	conv, err := runBest(false)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	for i, p := range points {
		row := Fig5Row{Txns: p, ImmortalSec: imm[i], ConventionalSec: conv[i]}
		if row.ConventionalSec > 0 {
			row.OverheadPct = 100 * (row.ImmortalSec - row.ConventionalSec) / row.ConventionalSec
		}
		res.Rows = append(res.Rows, row)
	}
	last := res.Rows[len(res.Rows)-1]
	res.ConvPerTxnMs = 1000 * last.ConventionalSec / float64(last.Txns)
	res.ImmortalPerTxnMs = 1000 * last.ImmortalSec / float64(last.Txns)
	res.OverheadPct = last.OverheadPct

	// Lowest-overhead case: the same records inside a single transaction —
	// one timestamp-table update total.
	batch := func(immortal bool) (float64, error) {
		e, err := NewEnv(o, immortal, nil)
		if err != nil {
			return 0, err
		}
		defer e.Close()
		start := time.Now()
		tx, err := e.DB.Begin(immortaldb.Serializable)
		if err != nil {
			return 0, err
		}
		for _, op := range ops {
			if err := tx.Set(e.Table, workload.Key(op.OID), workload.Value(op.Pos)); err != nil {
				return 0, err
			}
		}
		if err := tx.Commit(); err != nil {
			return 0, err
		}
		return time.Since(start).Seconds(), nil
	}
	batchBest := func(immortal bool) (float64, error) {
		a, err := batch(immortal)
		if err != nil {
			return 0, err
		}
		b, err := batch(immortal)
		if err != nil {
			return 0, err
		}
		if b < a {
			a = b
		}
		return a, nil
	}
	if res.BatchedImmortalSec, err = batchBest(true); err != nil {
		return nil, err
	}
	if res.BatchedConventionalSec, err = batchBest(false); err != nil {
		return nil, err
	}
	return res, nil
}

func fig5Points(total int) []int {
	// The paper's x axis: 2K steps up to 32K, scaled.
	var out []int
	for i := 1; i <= 16; i++ {
		out = append(out, total*i/16)
	}
	return out
}

// ---------------------------------------------------------------- Figure 6

// Fig6Mix is one insert/update ratio of Figure 6.
type Fig6Mix struct {
	Inserts        int
	UpdatesPerItem int // label only: 72, 36, 18, 9
}

// Fig6Mixes are the paper's four configurations over 36,000 transactions.
var Fig6Mixes = []Fig6Mix{
	{500, 72},
	{1000, 36},
	{2000, 18},
	{4000, 9},
}

// Fig6Row is one measured point of Figure 6.
type Fig6Row struct {
	Mix        Fig6Mix
	PctHistory int // how far back the AS OF time lies: 0 = now, 100 = oldest
	Millis     float64
	Rows       int // records returned by the full-table AS OF scan
}

// Fig6Label renders a mix like the paper's legend ("0.5K*72").
func Fig6Label(m Fig6Mix) string {
	if m.Inserts%1000 == 0 {
		return fmt.Sprintf("%dK*%d", m.Inserts/1000, m.UpdatesPerItem)
	}
	return fmt.Sprintf("%.1fK*%d", float64(m.Inserts)/1000, m.UpdatesPerItem)
}

// RunFig6 regenerates Figure 6: full-table-scan AS OF queries at increasing
// history depth, for each insert/update mix, over 36,000 transactions. The
// scan repeats `reps` times per point (>=1) and reports the average.
func RunFig6(o Options, mixes []Fig6Mix, pcts []int, reps int, mutate func(*immortaldb.Options)) ([]Fig6Row, error) {
	o = o.withDefaults()
	if len(pcts) == 0 {
		pcts = []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	}
	if reps < 1 {
		reps = 1
	}
	var out []Fig6Row
	for _, mix := range mixes {
		total := o.scaled(36000)
		inserts := o.scaled(mix.Inserts)
		ops, err := workload.New(workload.Config{Seed: o.Seed}).Stream(inserts, total)
		if err != nil {
			return nil, err
		}
		oe := o
		if oe.CacheFrames == 0 {
			// Keep the buffer pool smaller than the accumulated history so
			// deep AS OF scans pay for page fetches, as in the paper's
			// disk-bound testbed.
			oe.CacheFrames = 64
		}
		e, err := NewEnv(oe, true, mutate)
		if err != nil {
			return nil, err
		}
		times, err := ApplyStream(e, ops)
		if err != nil {
			e.Close()
			return nil, err
		}
		// Push everything through lazy timestamping and to disk, as a
		// steady-state server would have.
		if err := e.DB.Checkpoint(); err != nil {
			e.Close()
			return nil, err
		}
		for _, pct := range pcts {
			at := asOfPoint(times, pct)
			var rows int
			samples := make([]float64, 0, reps)
			for r := 0; r < reps; r++ {
				rows = 0
				start := time.Now()
				tx, err := e.DB.BeginAsOfTS(at)
				if err != nil {
					e.Close()
					return nil, err
				}
				err = tx.Scan(e.Table, nil, nil, func(k, v []byte) bool {
					rows++
					return true
				})
				tx.Commit()
				if err != nil {
					e.Close()
					return nil, err
				}
				samples = append(samples, float64(time.Since(start).Microseconds())/1000)
			}
			out = append(out, Fig6Row{
				Mix:        mix,
				PctHistory: pct,
				Millis:     median(samples),
				Rows:       rows,
			})
		}
		e.Close()
	}
	return out, nil
}

// median returns the middle sample (average of the middle two for even n).
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// asOfPoint maps "pct of history back from now" onto a commit timestamp.
func asOfPoint(times []immortaldb.Timestamp, pct int) immortaldb.Timestamp {
	if len(times) == 0 {
		return immortaldb.MaxTime()
	}
	idx := (len(times) - 1) * (100 - pct) / 100
	return times[idx]
}
