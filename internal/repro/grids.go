package repro

// GridCell names one expected row of a checked-in benchmark baseline: the
// (mode, clients) pair every BENCH_*.json entry is keyed by.
type GridCell struct {
	Mode    string `json:"mode"`
	Clients int    `json:"clients"`
}

func grid(mode string, clients ...int) []GridCell {
	out := make([]GridCell, 0, len(clients))
	for _, c := range clients {
		out = append(out, GridCell{Mode: mode, Clients: c})
	}
	return out
}

// BenchGrids returns, per checked-in baseline file, the exact (mode, clients)
// cell set the current benchablations experiments emit. benchgate
// -check-grids compares each baseline against this map: a baseline missing a
// cell (an experiment grew a new point) or carrying an extra one (a point was
// dropped or renamed) is stale and must be regenerated, because the gate
// silently skips cells that exist on only one side.
func BenchGrids() map[string][]GridCell {
	g := map[string][]GridCell{}
	add := func(file string, cells ...[]GridCell) {
		for _, cs := range cells {
			g[file] = append(g[file], cs...)
		}
	}
	add("BENCH_commit.json",
		grid("group", 1, 2, 4, 8, 16),
		grid("serial", 1, 2, 4, 8, 16))
	add("BENCH_hist.json",
		grid("asof-hot", 1),
		grid("storage-reduction", 1),
		grid("asof-cold", 1),
		grid("hist-commit", 1, 4, 16))
	add("BENCH_obs.json",
		grid("obs-off", 1, 8),
		grid("obs-on", 1, 8))
	add("BENCH_repl.json",
		grid("primary-only", 1, 4, 8),
		grid("with-follower", 1, 4, 8))
	add("BENCH_server.json",
		grid("embedded", 1, 4, 16),
		grid("wire", 1, 4, 16))
	add("BENCH_failover.json",
		grid("promote", 0, 64, 256))
	add("BENCH_overload.json",
		grid("admit", 1, 2, 4),
		grid("noadmit", 1, 2, 4))
	return g
}
