package repro

import (
	"math"
	"sync"
	"time"

	"immortaldb"
	"immortaldb/internal/workload"
)

// ---------------------------------------------------- A1: eager vs lazy

// EagerRow compares the two timestamping strategies of Section 2.2.
type EagerRow struct {
	Mode        string // "lazy" or "eager"
	Seconds     float64
	LogBytes    int64
	LogRecords  uint64 // approximated by stamps+commits via Stats
	PTTEntries  uint64
	PerTxnMicro float64
}

// RunEagerVsLazy measures the Figure-5 workload under lazy (the paper's
// choice) and eager timestamping. Eager delays commit by revisiting records
// and logs every stamp; lazy pays one PTT update per transaction instead.
func RunEagerVsLazy(o Options) ([]EagerRow, error) {
	o = o.withDefaults()
	total := o.scaled(16000)
	inserts := o.scaled(500)
	ops, err := workload.New(workload.Config{Seed: o.Seed}).Stream(inserts, total)
	if err != nil {
		return nil, err
	}
	var out []EagerRow
	for _, eager := range []bool{false, true} {
		e, err := NewEnv(o, true, func(op *immortaldb.Options) {
			op.EagerTimestamping = eager
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for _, op := range ops {
			if err := ApplyOp(e, op); err != nil {
				e.Close()
				return nil, err
			}
		}
		sec := time.Since(start).Seconds()
		st := e.DB.Stats()
		mode := "lazy"
		if eager {
			mode = "eager"
		}
		out = append(out, EagerRow{
			Mode:        mode,
			Seconds:     sec,
			LogBytes:    st.LogBytes,
			PTTEntries:  st.PTTEntries,
			PerTxnMicro: sec / float64(total) * 1e6,
		})
		e.Close()
	}
	return out, nil
}

// ----------------------------------------------- A2: chain vs TSB index

// IndexRow compares historical access paths at one history depth.
type IndexRow struct {
	Mode        string // "chain" or "tsb"
	PctHistory  int
	ScanMillis  float64
	PointMicros float64
	ChainHops   uint64
}

// RunChainVsTSB measures AS OF access via the paper's prototype page-chain
// traversal against the TSB-tree index — the paper's own prediction: "we
// expect the performance of as of queries, independent of the time
// requested, to equal current time queries once we implement the TSB-tree"
// (Section 5.2).
func RunChainVsTSB(o Options, pcts []int) ([]IndexRow, error) {
	o = o.withDefaults()
	if len(pcts) == 0 {
		pcts = []int{0, 25, 50, 75, 100}
	}
	total := o.scaled(36000)
	inserts := o.scaled(500)
	ops, err := workload.New(workload.Config{Seed: o.Seed}).Stream(inserts, total)
	if err != nil {
		return nil, err
	}
	var out []IndexRow
	for _, mode := range []immortaldb.IndexMode{immortaldb.IndexChain, immortaldb.IndexTSB} {
		e, err := NewEnv(o, true, func(op *immortaldb.Options) {
			op.HistoricalIndex = mode
		})
		if err != nil {
			return nil, err
		}
		times, err := ApplyStream(e, ops)
		if err != nil {
			e.Close()
			return nil, err
		}
		if err := e.DB.Checkpoint(); err != nil {
			e.Close()
			return nil, err
		}
		name := "chain"
		if mode == immortaldb.IndexTSB {
			name = "tsb"
		}
		for _, pct := range pcts {
			at := asOfPoint(times, pct)
			hopsBefore := e.DB.TreeStats(e.Table).ChainHops

			start := time.Now()
			tx, err := e.DB.BeginAsOfTS(at)
			if err != nil {
				e.Close()
				return nil, err
			}
			if err := tx.Scan(e.Table, nil, nil, func(k, v []byte) bool { return true }); err != nil {
				e.Close()
				return nil, err
			}
			tx.Commit()
			scanMs := float64(time.Since(start).Microseconds()) / 1000

			// Point reads: a spread of keys.
			const pointReps = 200
			start = time.Now()
			for r := 0; r < pointReps; r++ {
				tx, err := e.DB.BeginAsOfTS(at)
				if err != nil {
					e.Close()
					return nil, err
				}
				key := workload.Key(uint16(r * inserts / pointReps))
				if _, _, err := tx.Get(e.Table, key); err != nil {
					e.Close()
					return nil, err
				}
				tx.Commit()
			}
			pointUs := float64(time.Since(start).Microseconds()) / pointReps

			out = append(out, IndexRow{
				Mode:        name,
				PctHistory:  pct,
				ScanMillis:  scanMs,
				PointMicros: pointUs,
				ChainHops:   e.DB.TreeStats(e.Table).ChainHops - hopsBefore,
			})
		}
		e.Close()
	}
	return out, nil
}

// ------------------------------------------------------- A3: PTT GC

// GCRow tracks timestamp-table size with garbage collection on or off.
type GCRow struct {
	GC         bool
	Txns       int
	PTTEntries uint64
	VTTEntries int
}

// RunPTTGC measures Persistent Timestamp Table growth. With incremental GC
// (the paper's contribution over Postgres' ungarbage-collected table), the
// PTT stays near the working set; without it, one entry per transaction
// accumulates forever.
func RunPTTGC(o Options) ([]GCRow, error) {
	o = o.withDefaults()
	total := o.scaled(16000)
	inserts := o.scaled(500)
	ops, err := workload.New(workload.Config{Seed: o.Seed}).Stream(inserts, total)
	if err != nil {
		return nil, err
	}
	checkEvery := total / 4
	var out []GCRow
	for _, gc := range []bool{true, false} {
		e, err := NewEnv(o, true, func(op *immortaldb.Options) {
			op.DisablePTTGC = !gc
		})
		if err != nil {
			return nil, err
		}
		for i, op := range ops {
			if err := ApplyOp(e, op); err != nil {
				e.Close()
				return nil, err
			}
			if (i+1)%checkEvery == 0 {
				// Two checkpoints: the first flushes stamped pages, the
				// second's watermark lets GC collect them.
				if err := e.DB.Checkpoint(); err != nil {
					e.Close()
					return nil, err
				}
				if err := e.DB.Checkpoint(); err != nil {
					e.Close()
					return nil, err
				}
				out = append(out, GCRow{GC: gc, Txns: i + 1, PTTEntries: e.DB.Stats().PTTEntries})
			}
		}
		e.Close()
	}
	return out, nil
}

// --------------------------------------------- A4: key-split threshold T

// ThresholdRow measures current-timeslice storage utilization for one
// threshold setting.
type ThresholdRow struct {
	T            float64
	SliceUtil    float64
	Predicted    float64 // T * ln 2 (Section 3.3)
	CurrentPages int
	HistPages    int
}

// RunThreshold sweeps the utilization threshold T that decides when a time
// split is followed by a key split, and measures the resulting
// single-timeslice utilization of current pages against the paper's T·ln 2
// estimate.
func RunThreshold(o Options, ts []float64) ([]ThresholdRow, error) {
	o = o.withDefaults()
	if len(ts) == 0 {
		ts = []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	}
	total := o.scaled(24000)
	inserts := o.scaled(4000)
	ops, err := workload.New(workload.Config{Seed: o.Seed}).Stream(inserts, total)
	if err != nil {
		return nil, err
	}
	var out []ThresholdRow
	for _, t := range ts {
		t := t
		e, err := NewEnv(o, true, func(op *immortaldb.Options) {
			op.Threshold = t
		})
		if err != nil {
			return nil, err
		}
		for _, op := range ops {
			if err := ApplyOp(e, op); err != nil {
				e.Close()
				return nil, err
			}
		}
		u, err := e.DB.TableUtilization(e.Table)
		if err != nil {
			e.Close()
			return nil, err
		}
		out = append(out, ThresholdRow{
			T:            t,
			SliceUtil:    u.CurrentSliceUtilization(),
			Predicted:    t * math.Ln2,
			CurrentPages: u.CurrentPages,
			HistPages:    u.HistPages,
		})
		e.Close()
	}
	return out, nil
}

// ------------------------------------------------ S1: snapshot isolation

// SnapshotRow compares reader throughput under a concurrent update stream.
type SnapshotRow struct {
	ReaderMode string // "snapshot" or "serializable"
	ReadsDone  int
	Seconds    float64
	ReadsPerMs float64
}

// RunSnapshotBench runs a writer stream while a reader repeatedly point-
// reads hot keys, once under snapshot isolation (never blocking) and once
// serializable (S locks contending with the writer's X locks) — the paper's
// motivation for supporting snapshot isolation from the version store.
func RunSnapshotBench(o Options) ([]SnapshotRow, error) {
	o = o.withDefaults()
	writerTxns := o.scaled(4000)
	var out []SnapshotRow
	for _, snap := range []bool{true, false} {
		e, err := NewEnv(o, true, func(op *immortaldb.Options) {
			op.LockTimeout = 10 * time.Second
		})
		if err != nil {
			return nil, err
		}
		// Seed the hot keys.
		const hot = 16
		for k := 0; k < hot; k++ {
			if err := ApplyOp(e, workload.Op{OID: uint16(k), Pos: workload.Point{X: 1, Y: 1}}); err != nil {
				e.Close()
				return nil, err
			}
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(1)
		go func() { // writer: updates hot keys continuously
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := workload.Op{OID: uint16(i % hot), Pos: workload.Point{X: int32(i), Y: 0}}
				if ApplyOp(e, op) != nil {
					return
				}
				i++
				if i >= writerTxns {
					return
				}
			}
		}()
		level := immortaldb.SnapshotIsolation
		name := "snapshot"
		if !snap {
			level = immortaldb.Serializable
			name = "serializable"
		}
		reads := 0
		start := time.Now()
		deadline := start.Add(500 * time.Millisecond)
		for time.Now().Before(deadline) {
			tx, err := e.DB.Begin(level)
			if err != nil {
				break
			}
			for k := 0; k < hot; k++ {
				if _, _, err := tx.Get(e.Table, workload.Key(uint16(k))); err != nil {
					break
				}
				reads++
			}
			tx.Commit()
		}
		sec := time.Since(start).Seconds()
		close(stop)
		wg.Wait()
		out = append(out, SnapshotRow{
			ReaderMode: name,
			ReadsDone:  reads,
			Seconds:    sec,
			ReadsPerMs: float64(reads) / (sec * 1000),
		})
		e.Close()
	}
	return out, nil
}
