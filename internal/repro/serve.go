package repro

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"immortaldb"
	"immortaldb/internal/client"
	"immortaldb/internal/server"
	"immortaldb/internal/sqlish"
)

// ---------------------------------------------- C2: wire vs embedded commits

// ServeRow is one serving-layer throughput measurement: Clients concurrent
// single-record auto-commit INSERTs, either over the wire protocol through
// immortald's serving layer or through embedded sqlish sessions, both with
// durable (fsynced, group-committed) commits.
type ServeRow struct {
	Mode          string  `json:"mode"` // "wire" or "embedded"
	Clients       int     `json:"clients"`
	Commits       int     `json:"commits"`
	Seconds       float64 `json:"seconds"`
	CommitsPerSec float64 `json:"commits_per_sec"`
}

// RunServerThroughput measures what the network serving layer costs relative
// to embedded use. Both modes execute identical sqlish INSERT statements
// with fsync on; the wire mode adds framing, a loopback round trip, and the
// server's session dispatch per commit. Because commits are group-committed,
// added per-request latency can be partially absorbed: more clients resident
// in the commit pipeline means bigger shared-fsync batches.
func RunServerThroughput(o Options, clientCounts []int) ([]ServeRow, error) {
	o = o.withDefaults()
	if len(clientCounts) == 0 {
		clientCounts = []int{1, 4, 16}
	}
	total := o.scaled(600)
	var out []ServeRow
	for _, mode := range []string{"embedded", "wire"} {
		for _, clients := range clientCounts {
			sec, commits, err := serveStorm(mode, clients, total)
			if err != nil {
				return nil, err
			}
			out = append(out, ServeRow{
				Mode:          mode,
				Clients:       clients,
				Commits:       commits,
				Seconds:       sec,
				CommitsPerSec: float64(commits) / sec,
			})
		}
	}
	return out, nil
}

// serveStorm runs about total INSERT auto-commits split across clients on
// disjoint keys and returns wall-clock seconds and the exact commit count.
func serveStorm(mode string, clients, total int) (float64, int, error) {
	dir, err := os.MkdirTemp("", "immortaldb-serve")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	db, err := immortaldb.Open(dir, &immortaldb.Options{NoSync: false})
	if err != nil {
		return 0, 0, err
	}
	defer db.Close()

	setup := sqlish.NewSession(db)
	if _, err := setup.Exec("CREATE IMMORTAL TABLE bench (k INT PRIMARY KEY, v INT)"); err != nil {
		return 0, 0, err
	}
	setup.Close()

	per := total / clients
	if per == 0 {
		per = 1
	}

	// exec returns one statement runner per client; wire mode routes it
	// through an in-process server on a loopback socket.
	var mkExec func(c int) (func(stmt string) error, func(), error)
	switch mode {
	case "embedded":
		mkExec = func(int) (func(stmt string) error, func(), error) {
			sess := sqlish.NewSession(db)
			return func(stmt string) error {
				_, err := sess.Exec(stmt)
				return err
			}, func() { sess.Close() }, nil
		}
	case "wire":
		srv := server.New(db, server.Config{MaxConns: clients + 4})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return 0, 0, err
		}
		go srv.Serve()
		defer srv.Close()
		pool, err := client.Open(addr.String(), &client.Options{MaxConns: clients})
		if err != nil {
			return 0, 0, err
		}
		defer pool.Close()
		ctx := context.Background()
		mkExec = func(int) (func(stmt string) error, func(), error) {
			s, err := pool.Session(ctx)
			if err != nil {
				return nil, nil, err
			}
			return func(stmt string) error {
				_, err := s.Exec(ctx, stmt)
				return err
			}, func() { s.Close() }, nil
		}
	default:
		return 0, 0, fmt.Errorf("repro: unknown serve mode %q", mode)
	}

	execs := make([]func(string) error, clients)
	closers := make([]func(), clients)
	for c := 0; c < clients; c++ {
		exec, closeFn, err := mkExec(c)
		if err != nil {
			return 0, 0, err
		}
		execs[c], closers[c] = exec, closeFn
	}
	defer func() {
		for _, fn := range closers {
			fn()
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := c * per
			for i := 0; i < per; i++ {
				stmt := fmt.Sprintf("INSERT INTO bench VALUES (%d, %d)", base+i, i)
				if err := execs[c](stmt); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	sec := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	return sec, per * clients, nil
}
