package repro

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"immortaldb"
	"immortaldb/internal/admit"
	"immortaldb/internal/client"
	"immortaldb/internal/server"
)

// ------------------------------------------- O2: admission control vs overload

// OverloadRow is one open-loop overload measurement. Clients holds the
// offered-load multiplier over measured capacity (1 = offered ≈ what the
// server sustains closed-loop), so the row fits the (mode, clients) cell
// shape every BENCH_*.json shares. CommitsPerSec is goodput: only requests
// that completed within their deadline count.
type OverloadRow struct {
	Mode           string  `json:"mode"`    // "admit" or "noadmit"
	Clients        int     `json:"clients"` // offered-load multiplier
	Offered        int     `json:"offered"`
	Commits        int     `json:"commits"`  // completed within deadline
	Shed           int     `json:"shed"`     // refused by the admission gate
	Timeouts       int     `json:"timeouts"` // completed late, or failed
	Dropped        int     `json:"dropped"`  // abandoned: no connection free
	Seconds        float64 `json:"seconds"`
	CommitsPerSec  float64 `json:"commits_per_sec"` // goodput, the gated metric
	P99Millis      float64 `json:"p99_millis"`      // executed requests only
	DeadlineMillis float64 `json:"deadline_millis"`
}

// RunOverloadAblation measures what admission control buys when offered load
// exceeds capacity. A closed-loop phase first measures the server's durable
// commit capacity R; open-loop phases then push arrivals at mult×R for each
// multiplier, once gated ("admit") and once ungated ("noadmit").
//
// Past saturation the server is a single queueing station, so response time
// is backlog/R. Every request carries a deadline derived from R, and each
// outstanding request holds one of ~4×R×deadline connections — a fleet
// sized so that, fully resident, its backlog alone pushes response time to
// several deadlines, independent of how fast the machine is.
//
// The two modes differ exactly by the cooperative-backpressure loop this
// package exists to measure. The gated fleet behaves like the pooled
// client: a shed (hinted CodeOverloaded) parks that connection for the
// server's retry-after hint, so offered pressure adapts to what the gate
// admits and the admitted requests' response time stays bounded. The
// ungated fleet gets no hints and no sheds: every connection goes resident
// in the server's backlog until response time blows through the deadline.
// Goodput divides timely commits by total elapsed time — dropping or
// shedding work can bound p99, but only actually serving requests scores.
func RunOverloadAblation(o Options, mults []int) ([]OverloadRow, error) {
	o = o.withDefaults()
	if len(mults) == 0 {
		mults = []int{1, 2, 4}
	}
	capacity, err := overloadCapacity(o)
	if err != nil {
		return nil, fmt.Errorf("repro: overload capacity phase: %w", err)
	}
	// The deadline is ~4× the saturated closed-loop response time (8 clients
	// resident → ~8/R each), clamped away from timer-granularity noise.
	deadline := time.Duration(32 / capacity * float64(time.Second))
	deadline = clampDur(deadline, 20*time.Millisecond, 500*time.Millisecond)
	capOut := clampInt(int(4*capacity*deadline.Seconds()), 64, 4096)

	var out []OverloadRow
	for _, mode := range []string{"admit", "noadmit"} {
		for _, mult := range mults {
			row, err := overloadPhase(mode, mult, capacity, deadline, capOut)
			if err != nil {
				return nil, err
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// overloadEnv is one phase's serving stack: a fresh database, a server
// (gated or not), and conns pinned sessions in a free list. Pinned
// sessions give exactly one attempt per request — the pool's transparent
// hint-driven retries are the simulation suite's subject, and here they
// would smear shed latencies into the admitted requests' tail.
type overloadEnv struct {
	sessions chan *ovSession
	closers  []func()
}

// ovSession is one fleet connection plus its backoff state. consecShed is
// only touched while the session is checked out, so it needs no lock.
type ovSession struct {
	s          *client.Session
	consecShed int
}

func (e *overloadEnv) Close() {
	for i := len(e.closers) - 1; i >= 0; i-- {
		e.closers[i]()
	}
}

func newOverloadEnv(adm *admit.Config, conns int) (*overloadEnv, error) {
	e := &overloadEnv{}
	dir, err := os.MkdirTemp("", "immortaldb-overload")
	if err != nil {
		return nil, err
	}
	e.closers = append(e.closers, func() { os.RemoveAll(dir) })
	db, err := immortaldb.Open(dir, &immortaldb.Options{NoSync: false})
	if err != nil {
		e.Close()
		return nil, err
	}
	e.closers = append(e.closers, func() { db.Close() })
	srv := server.New(db, server.Config{MaxConns: conns + 8, Admission: adm})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		e.Close()
		return nil, err
	}
	go srv.Serve()
	e.closers = append(e.closers, func() { srv.Close() })
	pool, err := client.Open(addr.String(), &client.Options{MaxConns: conns})
	if err != nil {
		e.Close()
		return nil, err
	}
	e.closers = append(e.closers, func() { pool.Close() })
	ctx := context.Background()
	if _, err := pool.Exec(ctx, "CREATE IMMORTAL TABLE bench (k INT PRIMARY KEY, v INT)"); err != nil {
		e.Close()
		return nil, err
	}
	e.sessions = make(chan *ovSession, conns)
	for i := 0; i < conns; i++ {
		s, err := pool.Session(ctx)
		if err != nil {
			e.Close()
			return nil, err
		}
		e.closers = append(e.closers, func() { s.Close() })
		e.sessions <- &ovSession{s: s}
	}
	return e, nil
}

// overloadCapacity measures the ungated server's closed-loop durable commit
// throughput with 8 resident clients — the R the open-loop phases dose
// against. One warmup window settles group-commit batching and the page
// cache; the best of three measured windows is R, because transient stalls
// (GC, compaction) only ever depress a window, never inflate it, and an
// underestimated R underdoses every overload phase.
func overloadCapacity(o Options) (float64, error) {
	const clients = 8
	env, err := newOverloadEnv(nil, clients)
	if err != nil {
		return 0, err
	}
	defer env.Close()
	per := o.scaled(1200) / clients
	if per == 0 {
		per = 1
	}
	window := func(round int) (float64, error) {
		ctx := context.Background()
		var wg sync.WaitGroup
		errs := make([]error, clients)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				s := <-env.sessions
				defer func() { env.sessions <- s }()
				base := (round*clients + c) * per
				for i := 0; i < per; i++ {
					if _, err := s.s.Exec(ctx, fmt.Sprintf("INSERT INTO bench VALUES (%d, %d)", base+i, i)); err != nil {
						errs[c] = err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		sec := time.Since(start).Seconds()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return float64(per*clients) / sec, nil
	}
	if _, err := window(0); err != nil { // warmup
		return 0, err
	}
	best := 0.0
	for round := 1; round <= 3; round++ {
		r, err := window(round)
		if err != nil {
			return 0, err
		}
		best = math.Max(best, r)
	}
	return best, nil
}

// overloadPhase runs one open-loop arrival phase against a fresh server.
func overloadPhase(mode string, mult int, capacity float64, deadline time.Duration, capOut int) (OverloadRow, error) {
	row := OverloadRow{
		Mode:           mode,
		Clients:        mult,
		DeadlineMillis: float64(deadline.Microseconds()) / 1000,
	}
	var adm *admit.Config
	if mode == "admit" {
		adm = &admit.Config{
			Limit:     16,
			MaxLimit:  32,
			Target:    deadline / 4,
			MaxQueue:  16,
			MaxWait:   deadline / 2,
			RetryHint: 100 * time.Millisecond,
		}
	}
	env, err := newOverloadEnv(adm, capOut)
	if err != nil {
		return row, err
	}
	defer env.Close()

	rate := float64(mult) * capacity
	offered := clampInt(int(rate*1.5), 200, 60000)
	interval := time.Duration(float64(time.Second) / rate)
	row.Offered = offered

	var (
		mu       sync.Mutex
		lats     []float64 // milliseconds; one sample per executed request
		commits  int
		shed     int
		timeouts int
		dropped  int
	)
	var wg sync.WaitGroup
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < offered; i++ {
		if next := start.Add(time.Duration(i) * interval); time.Until(next) > 0 {
			time.Sleep(time.Until(next))
		}
		select {
		case s := <-env.sessions:
			wg.Add(1)
			go func(i int, s *ovSession) {
				defer wg.Done()
				t0 := time.Now()
				_, err := s.s.Exec(ctx, fmt.Sprintf("INSERT INTO bench VALUES (%d, %d)", i, i))
				lat := time.Since(t0)
				var re *client.RemoteError
				overloaded := errors.As(err, &re) && re.Overloaded()
				if overloaded && re.RetryAfter > 0 {
					// Cooperative backpressure: the hint is the floor, and
					// repeated sheds escalate it multiplicatively — under
					// sustained overload each connection self-paces down until
					// its share of the offered load fits what the gate admits.
					// A success only halves the escalation (additive-ish
					// recovery): resetting it outright would let the fleet
					// snap back to full pressure off one lucky admit.
					park := re.RetryAfter << min(s.consecShed, 4)
					s.consecShed++
					time.AfterFunc(park, func() { env.sessions <- s })
				} else {
					s.consecShed /= 2
					env.sessions <- s
				}
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					lats = append(lats, float64(lat.Microseconds())/1000)
					if lat <= deadline {
						commits++
					} else {
						timeouts++
					}
				case overloaded:
					shed++
				default:
					timeouts++
					lats = append(lats, float64(lat.Microseconds())/1000)
				}
			}(i, s)
		default:
			// An open-loop arrival with no connection free: the whole fleet
			// is resident in the backlog (ungated) or parked in hinted
			// backoff (gated). The request is abandoned — it scores no
			// goodput, and the elapsed-time denominator keeps the miss
			// honest.
			mu.Lock()
			dropped++
			mu.Unlock()
		}
	}
	wg.Wait()
	row.Seconds = time.Since(start).Seconds()
	row.Commits = commits
	row.Shed = shed
	row.Timeouts = timeouts
	row.Dropped = dropped
	row.CommitsPerSec = float64(commits) / row.Seconds
	row.P99Millis = pctile(lats, 0.99)
	return row, nil
}

// pctile returns the p-th percentile of samples (nearest-rank), 0 when empty.
func pctile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	idx := int(math.Ceil(p*float64(len(xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(xs) {
		idx = len(xs) - 1
	}
	return xs[idx]
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampDur(v, lo, hi time.Duration) time.Duration {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
