package repro

import (
	"os"
	"sort"
	"sync/atomic"
	"time"

	"immortaldb"
	"immortaldb/internal/itime"
)

// ------------------------------------------- R1: replication overhead/lag

// ReplRow is one replication-ablation measurement: durable commit throughput
// on a primary running alone versus the same primary with one follower
// continuously shipping and applying its log, plus the follower's lag.
type ReplRow struct {
	Mode          string  `json:"mode"` // "primary-only" or "with-follower"
	Clients       int     `json:"clients"`
	Commits       int     `json:"commits"`
	Seconds       float64 `json:"seconds"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	// LagP95KB is the 95th-percentile follower lag in KB of unapplied log,
	// sampled once per pump round. Zero for primary-only rows.
	LagP95KB float64 `json:"lag_p95_kb"`
}

// RunReplThroughput measures what segment shipping costs the primary. The
// shipper's reads ride the same WAL the committers are appending to, so the
// interesting contention is log-internal; the follower applies on its own
// engine and only its pull cadence touches the primary. Lag is the distance
// between the primary's durable end and the follower's applied horizon.
func RunReplThroughput(o Options, clientCounts []int) ([]ReplRow, error) {
	o = o.withDefaults()
	if len(clientCounts) == 0 {
		clientCounts = []int{1, 4, 8}
	}
	total := o.scaled(800)
	var out []ReplRow
	for _, follower := range []bool{false, true} {
		mode := "primary-only"
		if follower {
			mode = "with-follower"
		}
		for _, clients := range clientCounts {
			e, err := NewEnv(o, true, func(op *immortaldb.Options) {
				op.NoSync = false // durable commits: same regime as the commit ablation
			})
			if err != nil {
				return nil, err
			}
			var lagP95 float64
			var pumpErr error
			var stormDone atomic.Bool
			pumpDone := make(chan struct{})
			if follower {
				fdir, err := os.MkdirTemp("", "immortaldb-replbench")
				if err != nil {
					e.Close()
					return nil, err
				}
				fdb, err := immortaldb.OpenReplica(fdir, &immortaldb.Options{
					PageSize:    o.PageSize,
					CacheFrames: o.CacheFrames,
					NoSync:      true,
					Clock:       itime.NewSimClock(time.Date(2004, 8, 12, 10, 0, 0, 0, time.UTC)),
				})
				if err != nil {
					os.RemoveAll(fdir)
					e.Close()
					return nil, err
				}
				go func() {
					defer close(pumpDone)
					defer fdb.Close()
					defer os.RemoveAll(fdir)
					var lags []float64
					defer func() {
						lagP95 = percentile(lags, 0.95)
					}()
					plog, flog := e.DB.Log(), fdb.Log()
					for {
						ch, err := plog.ShipRead(flog.End(), 64<<10)
						if err != nil {
							pumpErr = err
							return
						}
						if len(ch.Data) > 0 {
							if err := flog.IngestChunk(ch); err != nil {
								pumpErr = err
								return
							}
							if _, err := fdb.ReplicaApply(0); err != nil {
								pumpErr = err
								return
							}
						}
						lag := uint64(plog.FlushedLSN()) - fdb.Horizon().AppliedLSN
						lags = append(lags, float64(lag)/1024)
						if len(ch.Data) == 0 {
							// Caught up. Keep pumping until the storm ends,
							// then exit fully drained (zero final lag).
							if stormDone.Load() {
								return
							}
							time.Sleep(200 * time.Microsecond)
						}
					}
				}()
			} else {
				close(pumpDone)
			}
			sec, commits, err := CommitStorm(e, clients, total)
			stormDone.Store(true)
			<-pumpDone
			e.Close()
			if err != nil {
				return nil, err
			}
			if pumpErr != nil {
				return nil, pumpErr
			}
			out = append(out, ReplRow{
				Mode:          mode,
				Clients:       clients,
				Commits:       commits,
				Seconds:       sec,
				CommitsPerSec: float64(commits) / sec,
				LagP95KB:      lagP95,
			})
		}
	}
	return out, nil
}

// percentile returns the p-quantile of xs (nearest-rank), 0 for no samples.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
