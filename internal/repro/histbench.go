package repro

import (
	"fmt"
	"time"

	"immortaldb"
	"immortaldb/internal/workload"
)

// ----------------------------------------- H1: tiered history storage

// HistRow is one tiered-history measurement. All modes reuse the commit-row
// JSON shape so the CI bench gate can compare (mode, clients) cells on
// commits_per_sec:
//
//	hist-commit        — durable-pipeline commit throughput with the
//	                     background compactor migrating history underneath
//	                     (commits_per_sec is commits per second)
//	asof-hot           — AS OF point reads with all history in hot TSB pages
//	                     (commits_per_sec is queries per second)
//	asof-cold          — the same reads after migration to compressed runs
//	                     (commits_per_sec is queries per second)
//	storage-reduction  — hot bytes the migrated pages occupied vs the cold
//	                     bytes their versions now occupy (commits_per_sec is
//	                     the reduction factor, so the gate also catches a
//	                     compression regression)
type HistRow struct {
	Mode          string  `json:"mode"`
	Clients       int     `json:"clients"`
	Commits       int     `json:"commits"`
	Seconds       float64 `json:"seconds"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	// ColdBytes and PagesMigrated qualify the storage-reduction row.
	ColdBytes     uint64 `json:"cold_bytes,omitempty"`
	PagesMigrated uint64 `json:"pages_migrated,omitempty"`
}

// MinStorageReduction is the factor the compressed cold tier must beat: the
// versions in a migrated history page must occupy at most 1/3 of the page
// bytes they were freed from. The repro test enforces it; the CI gate then
// holds the measured factor within the regression budget.
const MinStorageReduction = 3.0

// RunHistAblation measures the tiered-history cold tier: what migration does
// to storage footprint, what cold runs cost AS OF readers relative to hot
// pages, and what the background compactor costs committers.
func RunHistAblation(o Options, clientCounts []int) ([]HistRow, error) {
	o = o.withDefaults()
	if len(clientCounts) == 0 {
		clientCounts = []int{1, 4, 16}
	}
	var out []HistRow

	// --- Storage reduction and AS OF latency, hot vs cold. One database:
	// measure the reads, migrate, measure again — same pages, same
	// timestamps, only the tier changes.
	oe := o
	if oe.CacheFrames == 0 {
		// A pool smaller than the accumulated history, as in Figure 6: deep
		// reads must actually fetch, so the hot/cold comparison is I/O-bound
		// on both sides rather than served from the buffer pool.
		oe.CacheFrames = 64
	}
	total := o.scaled(12000)
	inserts := o.scaled(300)
	ops, err := workload.New(workload.Config{Seed: o.Seed}).Stream(inserts, total)
	if err != nil {
		return nil, err
	}
	e, err := NewEnv(oe, true, func(op *immortaldb.Options) {
		op.TieredHistory = true
	})
	if err != nil {
		return nil, err
	}
	times, err := ApplyStream(e, ops)
	if err != nil {
		e.Close()
		return nil, err
	}
	// Flush-stamp everything so the whole history is migratable.
	if err := e.DB.Checkpoint(); err != nil {
		e.Close()
		return nil, err
	}

	// Enough repetitions that even the hot side (microseconds per read)
	// accumulates a stably measurable total; scaled workloads shrink the
	// database, not the measurement.
	const reps = 2000
	pointReads := func() (float64, error) {
		start := time.Now()
		for r := 0; r < reps; r++ {
			at := asOfPoint(times, 20+(r*13)%80) // spread over deep history
			tx, err := e.DB.BeginAsOfTS(at)
			if err != nil {
				return 0, err
			}
			key := workload.Key(uint16(r * inserts / reps))
			if _, _, err := tx.Get(e.Table, key); err != nil {
				tx.Rollback()
				return 0, err
			}
			tx.Commit()
		}
		return time.Since(start).Seconds(), nil
	}

	hotSec, err := pointReads()
	if err != nil {
		e.Close()
		return nil, err
	}
	out = append(out, HistRow{
		Mode: "asof-hot", Clients: 1, Commits: reps, Seconds: hotSec,
		CommitsPerSec: float64(reps) / hotSec,
	})

	if err := e.DB.CompactHistory(); err != nil {
		e.Close()
		return nil, err
	}
	st := e.DB.Stats()
	if st.PagesMigrated == 0 || st.HistBytes == 0 {
		e.Close()
		return nil, fmt.Errorf("histbench: migration moved nothing (pages=%d cold bytes=%d)", st.PagesMigrated, st.HistBytes)
	}
	hotBytes := st.PagesMigrated * uint64(oe.PageSize)
	out = append(out, HistRow{
		Mode: "storage-reduction", Clients: 1,
		Commits:       int(st.PagesMigrated),
		Seconds:       float64(st.HistBytes),
		CommitsPerSec: float64(hotBytes) / float64(st.HistBytes),
		ColdBytes:     st.HistBytes,
		PagesMigrated: st.PagesMigrated,
	})

	coldSec, err := pointReads()
	if err != nil {
		e.Close()
		return nil, err
	}
	out = append(out, HistRow{
		Mode: "asof-cold", Clients: 1, Commits: reps, Seconds: coldSec,
		CommitsPerSec: float64(reps) / coldSec,
	})
	e.Close()

	// --- Commit throughput with the background compactor on. Durable
	// commits (the fsync is the cost the compactor's I/O could disturb),
	// checkpoints between thirds so migrations find stamped victims while
	// committers are still running.
	stormTotal := o.scaled(800)
	if stormTotal < 600 {
		stormTotal = 600 // fsync-bound rates need enough commits to average out
	}
	storm := func(clients int) (HistRow, error) {
		e, err := NewEnv(o, true, func(op *immortaldb.Options) {
			op.NoSync = false
			op.GroupCommit = immortaldb.GroupCommitOn
			op.TieredHistory = true
			op.HistCompactEvery = time.Millisecond
		})
		if err != nil {
			return HistRow{}, err
		}
		defer e.Close()
		var sec float64
		commits := 0
		for part := 0; part < 3; part++ {
			s, n, err := CommitStorm(e, clients, stormTotal/3)
			if err != nil {
				return HistRow{}, err
			}
			sec += s
			commits += n
			if err := e.DB.Checkpoint(); err != nil {
				return HistRow{}, err
			}
		}
		if comp := e.DB.Stats().HistCompactions; comp == 0 {
			return HistRow{}, fmt.Errorf("histbench: background compactor never ran during the %d-client storm", clients)
		}
		return HistRow{
			Mode: "hist-commit", Clients: clients, Commits: commits, Seconds: sec,
			CommitsPerSec: float64(commits) / sec,
		}, nil
	}
	for _, clients := range clientCounts {
		// Best of three: wall-clock fsync rates on a shared machine jitter
		// far more than the engine cost under test; the fastest run is the
		// least-disturbed one.
		var best HistRow
		for attempt := 0; attempt < 3; attempt++ {
			row, err := storm(clients)
			if err != nil {
				return nil, err
			}
			if row.CommitsPerSec > best.CommitsPerSec {
				best = row
			}
		}
		out = append(out, best)
	}
	return out, nil
}
