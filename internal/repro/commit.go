package repro

import (
	"sync"
	"time"

	"immortaldb"
	"immortaldb/internal/workload"
)

// ---------------------------------------------- C1: group-commit throughput

// CommitRow is one durable-commit throughput measurement: Clients concurrent
// single-record transactions committing with fsync on, either through the
// group-commit dispatcher or with one fsync per commit.
type CommitRow struct {
	Mode          string  `json:"mode"` // "group" or "serial"
	Clients       int     `json:"clients"`
	Commits       int     `json:"commits"`
	Seconds       float64 `json:"seconds"`
	CommitsPerSec float64 `json:"commits_per_sec"`
}

// RunCommitThroughput measures durable commit throughput as the client count
// grows. Unlike the other experiments this one keeps fsync ON: the cost under
// test is the commit hardening itself. With group commit, committers that
// reach the sync together share one fsync (a leader syncs the batched commit
// records, the rest wait on its result), so throughput should scale with
// clients; with one fsync per commit it stays flat at the disk's sync rate.
func RunCommitThroughput(o Options, clientCounts []int) ([]CommitRow, error) {
	o = o.withDefaults()
	if len(clientCounts) == 0 {
		clientCounts = []int{1, 2, 4, 8, 16}
	}
	total := o.scaled(800)
	var out []CommitRow
	for _, mode := range []immortaldb.GroupCommitMode{immortaldb.GroupCommitOn, immortaldb.GroupCommitOff} {
		name := "group"
		if mode == immortaldb.GroupCommitOff {
			name = "serial"
		}
		for _, clients := range clientCounts {
			e, err := NewEnv(o, true, func(op *immortaldb.Options) {
				op.NoSync = false // durable commits: the fsync IS the cost under test
				op.GroupCommit = mode
			})
			if err != nil {
				return nil, err
			}
			sec, commits, err := CommitStorm(e, clients, total)
			e.Close()
			if err != nil {
				return nil, err
			}
			out = append(out, CommitRow{
				Mode:          name,
				Clients:       clients,
				Commits:       commits,
				Seconds:       sec,
				CommitsPerSec: float64(commits) / sec,
			})
		}
	}
	return out, nil
}

// CommitStorm runs about total single-record transactions split evenly across
// clients on disjoint key ranges (no lock conflicts: the measurement is the
// commit pipeline, not the lock manager) and returns the wall-clock seconds
// and the exact commit count.
func CommitStorm(e *Env, clients, total int) (float64, int, error) {
	per := total / clients
	if per == 0 {
		per = 1
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := uint16(c * 64)
			for i := 0; i < per; i++ {
				tx, err := e.DB.Begin(immortaldb.Serializable)
				if err != nil {
					errs[c] = err
					return
				}
				pos := workload.Point{X: int32(i), Y: int32(c)}
				if err := tx.Set(e.Table, workload.Key(base+uint16(i%64)), workload.Value(pos)); err != nil {
					tx.Rollback()
					errs[c] = err
					return
				}
				if err := tx.Commit(); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	sec := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	return sec, per * clients, nil
}
