package repro

import (
	"immortaldb"
	"immortaldb/internal/obs"
)

// ------------------------------------------------- O1: observability overhead

// ObsRow is one observability-overhead measurement: durable group-commit
// throughput with the obs layer recording ("obs-on") vs runtime-disabled
// ("obs-off"). OverheadPct is filled on the obs-on rows: how much slower the
// instrumented run was than the disabled baseline at the same client count
// (negative values mean the instrumented run happened to win — the
// difference is inside fsync noise).
type ObsRow struct {
	Mode          string  `json:"mode"` // "obs-on" or "obs-off"
	Clients       int     `json:"clients"`
	Commits       int     `json:"commits"`
	Seconds       float64 `json:"seconds"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	OverheadPct   float64 `json:"overhead_pct,omitempty"`
}

// RunObsOverhead measures what the instrumentation costs on the hottest
// path: durable commits through the group-commit pipeline, the workload of
// RunCommitThroughput. Each (mode, clients) cell runs the storm three times
// on a fresh database and keeps the best throughput — fsync timing noise is
// one-sided, so best-of-N isolates the code-path cost under test. The obs
// disable switch is runtime (obs.SetEnabled), not the obsoff build tag: one
// binary measures both sides, which is what a CI gate can compare.
func RunObsOverhead(o Options, clientCounts []int) ([]ObsRow, error) {
	o = o.withDefaults()
	if len(clientCounts) == 0 {
		clientCounts = []int{1, 8}
	}
	// Longer storms than C1: the effect under test is a few percent, so each
	// run must be long enough that fsync scheduling noise averages out.
	total := o.scaled(8000)
	const repeats = 5
	defer obs.SetEnabled(true)

	one := func(enabled bool, clients int) (float64, int, error) {
		e, err := NewEnv(o, true, func(op *immortaldb.Options) {
			op.NoSync = false // durable: the instrumented fsync path is the target
			op.GroupCommit = immortaldb.GroupCommitOn
		})
		if err != nil {
			return 0, 0, err
		}
		obs.SetEnabled(enabled)
		sec, commits, err := CommitStorm(e, clients, total)
		obs.SetEnabled(true)
		e.Close()
		return sec, commits, err
	}

	var out []ObsRow
	for _, clients := range clientCounts {
		off := ObsRow{Mode: "obs-off", Clients: clients}
		on := ObsRow{Mode: "obs-on", Clients: clients}
		// Interleave the modes (off, on, off, on, ...): machine drift —
		// filesystem cache state, thermal throttling, background I/O — moves
		// slower than one repeat, so clustering all runs of one mode first
		// would let it masquerade as instrumentation cost.
		for r := 0; r < repeats; r++ {
			for _, row := range []*ObsRow{&off, &on} {
				sec, commits, err := one(row.Mode == "obs-on", clients)
				if err != nil {
					return nil, err
				}
				if cps := float64(commits) / sec; cps > row.CommitsPerSec {
					row.CommitsPerSec = cps
					row.Commits = commits
					row.Seconds = sec
				}
			}
		}
		on.OverheadPct = 100 * (off.CommitsPerSec - on.CommitsPerSec) / off.CommitsPerSec
		out = append(out, off, on)
	}
	return out, nil
}
