package repro

import (
	"fmt"
	"os"
	"time"

	"immortaldb"
	"immortaldb/internal/itime"
	"immortaldb/internal/wal"
)

// ------------------------------------------- F1: failover / promotion cost

// FailoverRow is one promotion measurement: a follower that trails the
// primary's durable end by ~Clients KB of shipped-but-unapplied log promotes
// to a read-write primary, and the row records how long the failover kept
// writes unavailable. Mode/Clients/CommitsPerSec follow the benchgate row
// convention so the CI gate can watch the grid: Clients carries the lag
// bucket in KB, and CommitsPerSec is failovers per second (1000 /
// UnavailMillis) — a promotion slowdown shows up as a throughput regression.
type FailoverRow struct {
	Mode          string  `json:"mode"`            // "promote"
	Clients       int     `json:"clients"`         // lag bucket in KB of unapplied log
	Commits       int     `json:"commits"`         // primary commits replicated before the failover
	Seconds       float64 `json:"seconds"`         // the full unavailability window
	CommitsPerSec float64 `json:"commits_per_sec"` // failovers per second
	// RedoKB is the actual unapplied backlog at promotion start (the bucket
	// is a target; record boundaries quantize it).
	RedoKB float64 `json:"redo_kb"`
	// PromoteMillis is Promote itself: the bounded redo drain, the fence
	// trim, the durable promote record, and the promotion checkpoint.
	PromoteMillis float64 `json:"promote_millis"`
	// FirstCommitMillis is the survivor's first durable commit after
	// promotion — the moment a redirected client is acked again.
	FirstCommitMillis float64 `json:"first_commit_millis"`
	// UnavailMillis is the client-visible write-unavailability window:
	// PromoteMillis + FirstCommitMillis.
	UnavailMillis float64 `json:"unavail_millis"`
	Epoch         uint64  `json:"epoch"`
}

// RunFailoverAblation measures promotion time against replication lag. For
// each lag bucket a fresh primary runs the commit workload, a follower
// ingests the whole log but applies only up to lag KB short of the end, and
// the follower promotes: the unapplied suffix is exactly the redo debt the
// failover must pay before the fence seals. The window ends at the
// survivor's first durable commit.
func RunFailoverAblation(o Options, lagKBs []int) ([]FailoverRow, error) {
	o = o.withDefaults()
	if len(lagKBs) == 0 {
		lagKBs = []int{0, 64, 256}
	}
	total := o.scaled(600)
	var out []FailoverRow
	for _, lagKB := range lagKBs {
		e, err := NewEnv(o, true, func(op *immortaldb.Options) {
			op.NoSync = false // the shipped stream must be durable to ship at all
		})
		if err != nil {
			return nil, err
		}
		_, commits, err := CommitStorm(e, 4, total)
		if err != nil {
			e.Close()
			return nil, err
		}

		// A promotion is a one-shot few-millisecond event; a single sample
		// is too noisy to gate on. Build three independent followers of the
		// same primary and keep the fastest failover — the latency floor.
		var best FailoverRow
		for trial := 0; trial < 3; trial++ {
			row, err := promoteOnce(o, e.DB, lagKB)
			if err != nil {
				e.Close()
				return nil, err
			}
			if trial == 0 || row.UnavailMillis < best.UnavailMillis {
				best = row
			}
		}
		e.Close()
		best.Commits = commits
		out = append(out, best)
	}
	return out, nil
}

// promoteOnce builds one lagged follower of pdb and times its promotion.
func promoteOnce(o Options, pdb *immortaldb.DB, lagKB int) (FailoverRow, error) {
	row := FailoverRow{Mode: "promote", Clients: lagKB}
	fdir, err := os.MkdirTemp("", "immortaldb-failover")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(fdir)
	// The survivor's clock sits past everything the primary's bench clock
	// could have stamped, so post-promotion commits land after the
	// replicated history.
	clock := itime.NewSimClock(time.Date(2004, 8, 12, 12, 0, 0, 0, time.UTC))
	clock.AutoStep = 1
	clock.AutoEvery = 5
	fdb, err := immortaldb.OpenReplica(fdir, &immortaldb.Options{
		PageSize:    o.PageSize,
		CacheFrames: o.CacheFrames,
		NoSync:      false, // the promotion's fsyncs are the measured path
		Clock:       clock,
	})
	if err != nil {
		return row, err
	}
	defer fdb.Close()

	// Ingest the whole durable log; the lag lives purely in unapplied redo.
	plog, flog := pdb.Log(), fdb.Log()
	for {
		ch, err := plog.ShipRead(flog.End(), 64<<10)
		if err != nil {
			return row, err
		}
		if len(ch.Data) == 0 {
			break
		}
		if err := flog.IngestChunk(ch); err != nil {
			return row, err
		}
	}
	if err := flog.SyncIngested(); err != nil {
		return row, err
	}

	// Apply up to ~lagKB short of the end, in bounded steps so the stop
	// lands near the target instead of overshooting to the end.
	end := uint64(flog.End())
	target := uint64(wal.FirstLSN)
	if back := uint64(lagKB) * 1024; end > back+target {
		target = end - back
	}
	for fdb.Horizon().AppliedLSN < target {
		n, err := fdb.ReplicaApply(32)
		if err != nil {
			return row, err
		}
		if n == 0 {
			break
		}
	}
	row.RedoKB = float64(end-fdb.Horizon().AppliedLSN) / 1024

	t0 := time.Now()
	epoch, err := fdb.Promote()
	if err != nil {
		return row, err
	}
	promoteDone := time.Now()
	row.Epoch = epoch

	// The survivor's first durable commit closes the unavailability window.
	tbl, err := fdb.Table("MovingObjects")
	if err != nil {
		return row, err
	}
	tx, err := fdb.Begin(immortaldb.Serializable)
	if err != nil {
		return row, err
	}
	if err := tx.Set(tbl, []byte("failover-probe"), []byte("acked")); err != nil {
		tx.Rollback()
		return row, err
	}
	if err := tx.Commit(); err != nil {
		return row, err
	}
	commitDone := time.Now()

	row.PromoteMillis = float64(promoteDone.Sub(t0)) / float64(time.Millisecond)
	row.FirstCommitMillis = float64(commitDone.Sub(promoteDone)) / float64(time.Millisecond)
	row.UnavailMillis = row.PromoteMillis + row.FirstCommitMillis
	row.Seconds = commitDone.Sub(t0).Seconds()
	if row.UnavailMillis > 0 {
		row.CommitsPerSec = 1000 / row.UnavailMillis
	}
	if fdb.IsReplica() {
		return row, fmt.Errorf("failover bench: survivor still a replica after Promote")
	}
	return row, nil
}
