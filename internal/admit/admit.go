// Package admit is the serving layer's admission control: the gate that
// decides, before a statement touches the engine, whether executing it now
// is worth more than shedding it cheaply.
//
// Three mechanisms compose:
//
//   - Per-tenant token buckets throttle each tenant's request rate, keyed
//     off the tenant-packed BIGINT key scheme (see TenantFromStatement).
//     Statements carrying no tenant key draw from a shared default bucket.
//   - An adaptive global concurrency limit bounds how many statements
//     execute at once. With a latency target set, the limit follows AIMD:
//     it creeps up while observed latency stays under the target and cuts
//     multiplicatively when latency overshoots, so it tracks what the
//     hardware actually sustains rather than a guessed constant.
//   - A bounded FIFO queue absorbs short bursts over the limit.
//     Deadline-aware shedding keeps the queue honest: a request that
//     cannot plausibly start before its wait allowance expires — judged
//     against the gate's own latency estimate — is shed immediately
//     rather than parked to time out, and a full queue sheds instantly.
//
// Every shed carries a retry-after hint so a cooperative client can back
// off exactly as long as the server expects to stay busy, instead of
// burning its retry budget probing. Requests from sessions holding an open
// transaction bypass the gate entirely (Priority): a transaction that
// already holds locks must be able to finish, or the gate would convert
// overload into deadlock.
package admit

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"immortaldb/internal/itime"
	"immortaldb/internal/obs"
)

// Priority classifies a request for admission.
type Priority int

const (
	// PriorityNew is a request starting new work: a BEGIN, or an
	// auto-commit statement. These are gated.
	PriorityNew Priority = iota
	// PriorityTxn is a request from a session that already holds an open
	// transaction. It bypasses the gate: the transaction holds locks, and
	// stalling it behind fresh arrivals would invert the backpressure into
	// deadlock. Finishing it is also the fastest way to free capacity.
	PriorityTxn
)

// Quota is one token bucket's shape. The zero value is unlimited.
type Quota struct {
	// Rate refills the bucket in requests per second. Zero means no
	// time-based refill: the bucket only refills via Gate.Refill, which the
	// simulation harness calls at deterministic phase barriers.
	Rate float64
	// Burst is the bucket capacity. Zero or negative means unlimited — no
	// bucket is kept at all.
	Burst float64
}

func (q Quota) unlimited() bool { return q.Burst <= 0 }

// Config shapes a Gate. Zero values take the documented defaults.
type Config struct {
	// Default is the bucket untagged statements (no tenant key) share.
	Default Quota
	// Tenant is the bucket shape for any tenant without a PerTenant entry.
	Tenant Quota
	// PerTenant overrides Tenant for specific tenants.
	PerTenant map[uint32]Quota

	// Limit is the starting global concurrency limit (default 64).
	Limit int
	// MinLimit and MaxLimit clamp the adaptive limit
	// (defaults Limit/8, 4×Limit).
	MinLimit int
	MaxLimit int
	// Target is the latency the adaptive limit steers toward. Zero
	// disables adaptation: the limit stays fixed at Limit.
	Target time.Duration

	// MaxQueue bounds how many requests may wait for a concurrency slot
	// (default 2×Limit). Arrivals beyond it are shed immediately.
	MaxQueue int
	// MaxWait is a queued request's wait allowance (default 1s). A request
	// the gate estimates cannot start within it is shed on arrival; one
	// that waits it out is shed then.
	MaxWait time.Duration
	// RetryHint is the retry-after hint attached to sheds when the gate
	// has no better estimate (default 50ms).
	RetryHint time.Duration

	// Clock supplies time for bucket refill, AIMD cooldown, and queue
	// timeouts (default the real timeline).
	Clock itime.Timeline
}

func (c Config) withDefaults() Config {
	if c.Limit <= 0 {
		c.Limit = 64
	}
	if c.MinLimit <= 0 {
		c.MinLimit = max(1, c.Limit/8)
	}
	if c.MaxLimit < c.Limit {
		c.MaxLimit = 4 * c.Limit
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.Limit
	}
	if c.MaxWait <= 0 {
		c.MaxWait = time.Second
	}
	if c.RetryHint <= 0 {
		c.RetryHint = 50 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = itime.Real()
	}
	return c
}

// ErrOverloaded matches every gate shed via errors.Is.
var ErrOverloaded = errors.New("admit: overloaded")

// OverloadError reports a shed request: why, for whom, and when a retry is
// worth sending.
type OverloadError struct {
	// Reason is the mechanism that shed: "tenant quota", "queue full",
	// "deadline", or "queue timeout".
	Reason string
	// Tenant is the tenant the request was attributed to (0 = untagged).
	Tenant uint32
	// RetryAfter is the server's estimate of when a retry could succeed.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	if e.Tenant != 0 {
		return fmt.Sprintf("admit: overloaded (%s, tenant %d)", e.Reason, e.Tenant)
	}
	return fmt.Sprintf("admit: overloaded (%s)", e.Reason)
}

// Is reports errors.Is(err, ErrOverloaded) for every OverloadError.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

var (
	obsAdmitted = obs.NewCounter("immortald_admission_admitted_total",
		"Requests admitted through the gate.")
	obsShed = obs.NewCounter("immortald_admission_shed_total",
		"Requests shed by the gate (quota, queue, or deadline).")
	obsQueueDepth = obs.NewGauge("immortald_admission_queue_depth",
		"Requests currently waiting for a concurrency slot.")
	obsWait = obs.NewHistogram("immortald_admission_wait_seconds",
		"Time admitted requests spent queued for a slot.", obs.LatencyBuckets)
	obsLimit = obs.NewGauge("immortald_admission_limit",
		"Current adaptive global concurrency limit.")
)

// Gate is the admission gate. One Gate serves one server; all methods are
// safe for concurrent use.
type Gate struct {
	cfg    Config
	clock  itime.Timeline
	bypass atomic.Bool

	mu       sync.Mutex
	buckets  map[uint32]*bucket
	queue    []*waiter
	inflight int
	limit    float64 // adaptive concurrency limit, [MinLimit, MaxLimit]
	ewma     time.Duration
	lastDec  time.Time

	admitted uint64
	shed     uint64
	bypassed uint64
}

type bucket struct {
	tokens float64
	last   time.Time
}

type waiter struct {
	ch      chan struct{}
	granted bool
	gone    bool // abandoned by its request; skip when handing out slots
}

// Stats is a point-in-time snapshot for /healthz and oracles.
type Stats struct {
	Admitted uint64 // requests admitted (fast path or after queueing)
	Shed     uint64 // requests shed
	Bypassed uint64 // in-transaction requests that bypassed the gate
	Queued   int    // requests currently waiting
	Inflight int    // gated requests currently executing
	Limit    int    // current adaptive concurrency limit
}

// New builds a Gate.
func New(cfg Config) *Gate {
	cfg = cfg.withDefaults()
	g := &Gate{
		cfg:     cfg,
		clock:   cfg.Clock,
		buckets: make(map[uint32]*bucket),
		limit:   float64(cfg.Limit),
	}
	obsLimit.Set(int64(g.limit))
	return g
}

// Admit asks to start one request for the given tenant (0 = untagged). On
// admission it returns a release func the caller must invoke exactly once
// when the request finishes — release feeds the observed latency back into
// the adaptive limit and hands the slot to the next waiter. On a shed it
// returns an *OverloadError carrying the retry-after hint. ctx only bounds
// the queue wait; the fast paths never block.
func (g *Gate) Admit(ctx context.Context, tenant uint32, pri Priority) (release func(), err error) {
	start := g.clock.Now()
	if pri == PriorityTxn || g.bypass.Load() {
		g.mu.Lock()
		g.bypassed++
		g.mu.Unlock()
		return func() { g.release(start, false) }, nil
	}

	g.mu.Lock()
	if ok, hint := g.takeTokenLocked(tenant); !ok {
		return nil, g.shedLocked(&OverloadError{Reason: "tenant quota", Tenant: tenant, RetryAfter: hint})
	}
	if g.inflight < g.limitNow() {
		g.inflight++
		g.admitted++
		g.mu.Unlock()
		obsAdmitted.Inc()
		return func() { g.release(start, true) }, nil
	}

	// Over the limit: queue, unless the queue is full or this request has
	// no realistic chance of starting within its wait allowance.
	if len(g.queue) >= g.cfg.MaxQueue {
		return nil, g.shedLocked(&OverloadError{Reason: "queue full", Tenant: tenant, RetryAfter: g.waitHintLocked()})
	}
	if est := g.estWaitLocked(len(g.queue) + 1); est > g.cfg.MaxWait {
		return nil, g.shedLocked(&OverloadError{Reason: "deadline", Tenant: tenant, RetryAfter: est})
	}
	w := &waiter{ch: make(chan struct{})}
	g.queue = append(g.queue, w)
	obsQueueDepth.Set(int64(len(g.queue)))
	g.mu.Unlock()

	timedOut := make(chan struct{})
	tm := g.clock.AfterFunc(g.cfg.MaxWait, func() { close(timedOut) })
	select {
	case <-w.ch:
		tm.Stop()
	case <-timedOut:
	case <-ctx.Done():
		tm.Stop()
	}

	g.mu.Lock()
	if w.granted {
		// The slot arrived, possibly racing the timeout. Keep it unless
		// the caller itself gave up.
		if ctx.Err() != nil {
			g.mu.Unlock()
			g.release(start, true)
			return nil, ctx.Err()
		}
		g.admitted++
		g.mu.Unlock()
		obsAdmitted.Inc()
		obsWait.Observe(g.clock.Now().Sub(start).Seconds())
		return func() { g.release(start, true) }, nil
	}
	w.gone = true
	if ctx.Err() != nil {
		g.mu.Unlock()
		return nil, ctx.Err()
	}
	return nil, g.shedLocked(&OverloadError{Reason: "queue timeout", Tenant: tenant, RetryAfter: g.waitHintLocked()})
}

// shedLocked counts one shed and releases the mutex.
func (g *Gate) shedLocked(e *OverloadError) error {
	g.shed++
	obsQueueDepth.Set(int64(len(g.queue)))
	g.mu.Unlock()
	obsShed.Inc()
	return e
}

// release retires one request. slot=true returns a concurrency slot (or
// hands it to the next waiter); slot=false is a gate bypass, which only
// contributes its latency observation.
func (g *Gate) release(start time.Time, slot bool) {
	now := g.clock.Now()
	g.mu.Lock()
	g.noteLatencyLocked(now, now.Sub(start))
	if !slot {
		g.mu.Unlock()
		return
	}
	handed := false
	if g.inflight <= g.limitNow() {
		for len(g.queue) > 0 {
			w := g.queue[0]
			g.queue = g.queue[1:]
			if w.gone {
				continue
			}
			w.granted = true
			close(w.ch) // slot transfers: inflight stays
			handed = true
			break
		}
	}
	if !handed {
		g.inflight--
	}
	obsQueueDepth.Set(int64(len(g.queue)))
	g.mu.Unlock()
}

// noteLatencyLocked feeds one completion latency into the wait estimator
// and, when a target is set, the AIMD limit: additive increase while under
// target (and only under pressure, so an idle gate doesn't drift), one
// multiplicative decrease per target interval when over it.
func (g *Gate) noteLatencyLocked(now time.Time, lat time.Duration) {
	if lat < 0 {
		lat = 0
	}
	if g.ewma == 0 {
		g.ewma = lat
	} else {
		g.ewma = (7*g.ewma + lat) / 8
	}
	if g.cfg.Target <= 0 {
		return
	}
	if lat > g.cfg.Target {
		if now.Sub(g.lastDec) >= g.cfg.Target {
			g.limit = math.Max(float64(g.cfg.MinLimit), g.limit*0.7)
			g.lastDec = now
		}
	} else if g.inflight+len(g.queue) >= int(g.limit) {
		g.limit = math.Min(float64(g.cfg.MaxLimit), g.limit+1/g.limit)
	}
	obsLimit.Set(int64(g.limit))
}

func (g *Gate) limitNow() int { return int(g.limit) }

// estWaitLocked estimates how long the pos-th queued request waits for a
// slot, from the latency EWMA. Zero until the gate has seen a completion.
func (g *Gate) estWaitLocked(pos int) time.Duration {
	if g.ewma <= 0 {
		return 0
	}
	return time.Duration(float64(g.ewma) * float64(pos) / math.Max(1, g.limit))
}

// waitHintLocked is the retry-after hint for queue-related sheds: the
// estimated time for the backlog to drain, clamped to stay useful.
func (g *Gate) waitHintLocked() time.Duration {
	hint := g.estWaitLocked(len(g.queue) + 1)
	if hint < g.cfg.RetryHint {
		hint = g.cfg.RetryHint
	}
	if hint > 2*time.Second {
		hint = 2 * time.Second
	}
	return hint
}

// takeTokenLocked consumes one token from tenant's bucket. On refusal it
// returns the time until the next token (rate-refilled buckets) or the
// configured hint (manual-refill buckets).
func (g *Gate) takeTokenLocked(tenant uint32) (ok bool, hint time.Duration) {
	q := g.quotaFor(tenant)
	if q.unlimited() {
		return true, 0
	}
	b := g.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: q.Burst, last: g.clock.Now()}
		g.buckets[tenant] = b
	}
	if q.Rate > 0 {
		now := g.clock.Now()
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(q.Burst, b.tokens+q.Rate*dt)
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if q.Rate > 0 {
		return false, time.Duration((1 - b.tokens) / q.Rate * float64(time.Second))
	}
	return false, g.cfg.RetryHint
}

func (g *Gate) quotaFor(tenant uint32) Quota {
	if tenant == 0 {
		return g.cfg.Default
	}
	if q, ok := g.cfg.PerTenant[tenant]; ok {
		return q
	}
	return g.cfg.Tenant
}

// Refill refills every bucket to its burst capacity. The deterministic
// simulation harness calls this at script phase barriers in place of
// time-based refill, so shed decisions stay a pure function of each
// actor's operation sequence.
func (g *Gate) Refill() {
	now := g.clock.Now()
	g.mu.Lock()
	for t, b := range g.buckets {
		b.tokens = g.quotaFor(t).Burst
		b.last = now
	}
	g.mu.Unlock()
}

// SetBypass(true) turns the gate into a pass-through: every request is
// admitted (counted as bypassed) and quotas, limit, and queue are ignored.
// The simulation harness flips it on for post-run verification, so oracle
// reads are never shed on quotas the workload just exhausted.
func (g *Gate) SetBypass(on bool) { g.bypass.Store(on) }

// Stats snapshots the gate.
func (g *Gate) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{
		Admitted: g.admitted,
		Shed:     g.shed,
		Bypassed: g.bypassed,
		Queued:   len(g.queue),
		Inflight: g.inflight,
		Limit:    g.limitNow(),
	}
}
