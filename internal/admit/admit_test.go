package admit

import (
	"context"
	"errors"
	"testing"
	"time"

	"immortaldb/internal/itime"
	"immortaldb/internal/workload"
)

func TestTenantFromStatement(t *testing.T) {
	cases := []struct {
		stmt string
		want uint32
	}{
		{workload.MeterOp{Kind: workload.MeterAppend, Tenant: 7, Period: 3, Seq: 1, Amount: 5}.Statement(), 7},
		{"SELECT amount FROM meter WHERE k = " + "30064771073", 7}, // 7<<32 | 1<<16 | 1
		{"INSERT INTO t (k, v) VALUES (1, 2)", 0},                  // small literals: untagged
		{"SELECT * FROM t WHERE name = '30064771073'", 0},          // quoted: not a key
		{"SELECT * FROM t30064771073", 0},                          // identifier tail
		{"BEGIN TRANSACTION", 0},
		{"", 0},
		{"SELECT 99999999999999999999999999", 0}, // overflows int64: not a key
	}
	for _, c := range cases {
		if got := TenantFromStatement(c.stmt); got != c.want {
			t.Errorf("TenantFromStatement(%q) = %d, want %d", c.stmt, got, c.want)
		}
	}
}

func TestTokenBucketManualRefill(t *testing.T) {
	tl := &itime.SimTimeline{}
	g := New(Config{Tenant: Quota{Burst: 2}, Clock: tl})
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		rel, err := g.Admit(ctx, 9, PriorityNew)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		rel()
	}
	_, err := g.Admit(ctx, 9, PriorityNew)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third admit: got %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "tenant quota" || oe.Tenant != 9 {
		t.Fatalf("third admit: %+v", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatal("shed carried no retry-after hint")
	}
	// A different tenant has its own bucket.
	if _, err := g.Admit(ctx, 10, PriorityNew); err != nil {
		t.Fatalf("other tenant: %v", err)
	}
	// Refill restores the burst.
	g.Refill()
	if _, err := g.Admit(ctx, 9, PriorityNew); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	st := g.Stats()
	if st.Shed != 1 || st.Admitted != 4 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestTokenBucketRateRefill(t *testing.T) {
	tl := &itime.SimTimeline{}
	g := New(Config{Tenant: Quota{Rate: 10, Burst: 1}, Clock: tl})
	ctx := context.Background()

	if _, err := g.Admit(ctx, 1, PriorityNew); err != nil {
		t.Fatal(err)
	}
	_, err := g.Admit(ctx, 1, PriorityNew)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("got %v, want overload", err)
	}
	// At 10 req/s the next token is 100ms out; the hint should say so.
	if oe.RetryAfter <= 0 || oe.RetryAfter > 150*time.Millisecond {
		t.Fatalf("hint %v, want ~100ms", oe.RetryAfter)
	}
	tl.Advance(oe.RetryAfter)
	if _, err := g.Admit(ctx, 1, PriorityNew); err != nil {
		t.Fatalf("after waiting out the hint: %v", err)
	}
}

func TestConcurrencyQueueAndHandoff(t *testing.T) {
	tl := &itime.SimTimeline{}
	g := New(Config{Limit: 1, MaxQueue: 1, Clock: tl})
	ctx := context.Background()

	relA, err := g.Admit(ctx, 0, PriorityNew)
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		rel func()
		err error
	}
	bCh := make(chan res, 1)
	go func() {
		rel, err := g.Admit(ctx, 0, PriorityNew)
		bCh <- res{rel, err}
	}()
	// Wait until B is queued (time stands still, so no timeout can fire).
	for g.Stats().Queued == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	// C finds the queue full and is shed immediately.
	_, err = g.Admit(ctx, 0, PriorityNew)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue full" {
		t.Fatalf("C: got %v, want queue-full shed", err)
	}
	// Releasing A hands the slot to B without dropping inflight.
	relA()
	b := <-bCh
	if b.err != nil {
		t.Fatalf("B: %v", b.err)
	}
	if st := g.Stats(); st.Inflight != 1 || st.Queued != 0 {
		t.Fatalf("after handoff: %+v", st)
	}
	b.rel()
	if st := g.Stats(); st.Inflight != 0 {
		t.Fatalf("after release: %+v", st)
	}
}

func TestQueueTimeoutShed(t *testing.T) {
	tl := &itime.SimTimeline{}
	g := New(Config{Limit: 1, MaxWait: 100 * time.Millisecond, Clock: tl})
	ctx := context.Background()

	relA, err := g.Admit(ctx, 0, PriorityNew)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := g.Admit(ctx, 0, PriorityNew)
		errCh <- err
	}()
	for g.Stats().Queued == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	tl.Advance(100 * time.Millisecond)
	err = <-errCh
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue timeout" {
		t.Fatalf("got %v, want queue-timeout shed", err)
	}
	relA()
	if st := g.Stats(); st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("abandoned waiter leaked: %+v", st)
	}
}

func TestDeadlineShedUsesLatencyEstimate(t *testing.T) {
	tl := &itime.SimTimeline{}
	g := New(Config{Limit: 1, MaxWait: 10 * time.Millisecond, Clock: tl})
	ctx := context.Background()

	// Prime the latency estimate with one slow request.
	rel, err := g.Admit(ctx, 0, PriorityNew)
	if err != nil {
		t.Fatal(err)
	}
	tl.Advance(100 * time.Millisecond)
	rel()

	// With the slot held and ~100ms expected service time, a 10ms wait
	// allowance is hopeless: shed on arrival, hint = the estimate.
	relA, err := g.Admit(ctx, 0, PriorityNew)
	if err != nil {
		t.Fatal(err)
	}
	defer relA()
	_, err = g.Admit(ctx, 0, PriorityNew)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "deadline" {
		t.Fatalf("got %v, want deadline shed", err)
	}
	if oe.RetryAfter < 10*time.Millisecond {
		t.Fatalf("hint %v, want the ~100ms estimate", oe.RetryAfter)
	}
}

func TestTxnPriorityBypassesGate(t *testing.T) {
	tl := &itime.SimTimeline{}
	g := New(Config{Default: Quota{Burst: 1}, Limit: 1, Clock: tl})
	ctx := context.Background()

	// Exhaust both the default bucket and the concurrency limit.
	rel, err := g.Admit(ctx, 0, PriorityNew)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// In-transaction requests still get through: the session holds locks.
	for i := 0; i < 5; i++ {
		relTxn, err := g.Admit(ctx, 0, PriorityTxn)
		if err != nil {
			t.Fatalf("txn bypass %d: %v", i, err)
		}
		relTxn()
	}
	if st := g.Stats(); st.Bypassed != 5 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestAIMDTracksLatency(t *testing.T) {
	tl := &itime.SimTimeline{}
	g := New(Config{Limit: 10, MinLimit: 1, Target: 10 * time.Millisecond, Clock: tl})
	ctx := context.Background()

	// One over-target completion cuts the limit multiplicatively; a second
	// overshoot landing inside the cooldown window does not cut again.
	relA, err := g.Admit(ctx, 0, PriorityNew)
	if err != nil {
		t.Fatal(err)
	}
	relB, err := g.Admit(ctx, 0, PriorityNew)
	if err != nil {
		t.Fatal(err)
	}
	tl.Advance(50 * time.Millisecond)
	relA()
	if st := g.Stats(); st.Limit != 7 {
		t.Fatalf("after overshoot: limit %d, want 7", st.Limit)
	}
	relB()
	if st := g.Stats(); st.Limit != 7 {
		t.Fatalf("inside cooldown: limit %d, want 7", st.Limit)
	}
	// Under-target completions while the gate is saturated grow it back.
	var held []func()
	for i := 0; i < 6; i++ {
		r, err := g.Admit(ctx, 0, PriorityNew)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, r)
	}
	for i := 0; i < 60; i++ {
		r, err := g.Admit(ctx, 0, PriorityNew)
		if err != nil {
			t.Fatalf("saturated admit %d: %v", i, err)
		}
		tl.Advance(time.Millisecond)
		r()
	}
	if st := g.Stats(); st.Limit < 8 {
		t.Fatalf("after recovery: limit %d, want >= 8", st.Limit)
	}
	for _, r := range held {
		r()
	}
}
