package admit

// TenantFromStatement attributes a statement to a tenant via the
// tenant-packed BIGINT key scheme used by the metering workload
// (workload.MeterKey packs the tenant into the high 32 bits of the key).
// The first integer literal wide enough to carry a packed tenant — greater
// than 2^32-1 — names it; a statement with no such literal is untagged and
// returns 0, routing it to the gate's shared default bucket. Quoted spans
// are skipped so a key-shaped number inside a string literal cannot
// mislabel the session, and digit runs glued to identifier characters
// (t1, x_42) are ignored.
func TenantFromStatement(stmt string) uint32 {
	var quote byte
	for i := 0; i < len(stmt); i++ {
		c := stmt[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch {
		case c == '\'' || c == '"':
			quote = c
		case c >= '0' && c <= '9':
			if i > 0 && identChar(stmt[i-1]) {
				// Tail of an identifier: skip the whole digit run.
				for i+1 < len(stmt) && stmt[i+1] >= '0' && stmt[i+1] <= '9' {
					i++
				}
				continue
			}
			var v uint64
			overflow := false
			j := i
			for ; j < len(stmt) && stmt[j] >= '0' && stmt[j] <= '9'; j++ {
				if v > (1<<63-1)/10 {
					overflow = true
				}
				v = v*10 + uint64(stmt[j]-'0')
			}
			i = j - 1
			if !overflow && v <= 1<<63-1 && v > 0xFFFFFFFF {
				return uint32(v >> 32)
			}
		}
	}
	return 0
}

func identChar(c byte) bool {
	return c == '_' || c == '.' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}
