// Package sim is the deterministic in-process simulation harness. It is to
// clocks and networks what vfs.SimFS is to disks: a seedable in-memory
// network whose Listener and Conn implement net.Listener and net.Conn — so
// internal/server and internal/client run over it unmodified — with
// scripted latency, black-hole drops, partitions and mid-frame connection
// kills, all drawn from per-connection rngs seeded by (net seed, dialer
// label, dial sequence) so a connection's fate never depends on how
// goroutines interleave. On top of it, a scenario runner (scenario.go)
// boots whole client/server clusters on one virtual timeline and records an
// event trace whose canonical hash is byte-identical across runs of the
// same seed.
package sim

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"immortaldb/internal/itime"
)

// Errors. errTimeout satisfies net.Error with Timeout() == true, which is
// what the serving layer's deadline handling keys on.
var (
	// ErrRefused reports a dial that could not complete: no listener,
	// a partitioned address, a full accept backlog, or an injected refusal.
	ErrRefused = errors.New("sim: connection refused")
	errClosed  = errors.New("sim: use of closed connection")
	errReset   = errors.New("sim: connection reset by peer")
)

type timeoutError struct{}

func (timeoutError) Error() string   { return "sim: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

var errTimeout net.Error = timeoutError{}

// Mode classifies a scripted network fault.
type Mode string

// Fault modes.
const (
	// Refuse fails a dial outright.
	Refuse Mode = "refuse"
	// Drop black-holes the connection from the faulted write on: the bytes
	// (and every later write in either direction) silently vanish, so peers
	// block until their deadlines fire — a wedged, half-dead link.
	Drop Mode = "drop"
	// Kill cuts the connection mid-frame: the first KeepBytes of the
	// faulted write are delivered, the rest never arrive, and both ends see
	// a reset after draining what was delivered.
	Kill Mode = "kill"
	// Delay adds Extra one-way latency to the faulted write.
	Delay Mode = "delay"
)

// Fault is one scripted network fault, mirroring vfs.Fault but addressed in
// per-connection coordinates — the dialer's label, the connection's ordinal
// among that dialer's dials, and the operation index within the connection
// (the dial is op 1, every write in either direction one op) — so a
// schedule replays exactly regardless of goroutine interleaving.
type Fault struct {
	// Dialer, when non-empty, restricts the fault to connections whose
	// dialer label contains it as a substring.
	Dialer string
	// Addr, when non-empty, restricts the fault to dials whose target
	// address contains it as a substring.
	Addr string
	// ConnSeq, when non-zero, matches only the n-th (1-based) connection
	// the dialer makes.
	ConnSeq int64
	// Op selects the operation kind: "dial", "write", or "any"/"".
	Op string
	// StartOp is the 1-based per-connection operation index at which the
	// fault becomes active (0: immediately).
	StartOp int64
	// Count is how many matching operations are faulted before the fault
	// clears; negative means it never clears.
	Count int64
	// Mode is what happens to a matching operation.
	Mode Mode
	// KeepBytes (Kill) is how many bytes of the faulted write are
	// delivered before the cut; it is clamped below the write size so a
	// killed frame is always truncated.
	KeepBytes int64
	// Extra (Delay) is the added one-way latency.
	Extra time.Duration
}

func (f *Fault) matches(op string, p *pair, connOp int64) bool {
	if f.Count == 0 {
		return false // exhausted
	}
	if f.Op != "" && f.Op != "any" && f.Op != op {
		return false
	}
	if f.Dialer != "" && !strings.Contains(p.label, f.Dialer) {
		return false
	}
	if f.Addr != "" && !strings.Contains(p.addr, f.Addr) {
		return false
	}
	if f.ConnSeq != 0 && f.ConnSeq != p.connSeq {
		return false
	}
	if f.StartOp > 0 && connOp < f.StartOp {
		return false
	}
	return true
}

// Profile is the probabilistic chaos profile: every connection draws its
// fate from its own rng, so with a fixed net seed the same dial always
// meets the same fate. A zero Profile is a perfect network.
type Profile struct {
	// Latency is the base one-way delivery delay per write; Jitter adds a
	// uniform random extra drawn per write.
	Latency, Jitter time.Duration
	// RefuseProb is the probability a dial is refused.
	RefuseProb float64
	// KillProb is the per-write probability the connection is killed
	// mid-frame (a random prefix of the write is delivered first).
	KillProb float64
	// DropProb is the per-write probability the connection black-holes
	// from this write on.
	DropProb float64
}

// Net is one simulated network universe. All listeners, dials and
// connections within it share one seed and one timeline; latency and
// deadlines are virtual when the timeline is an itime.SimTimeline.
type Net struct {
	tl   itime.Timeline
	seed int64

	mu          sync.Mutex
	listeners   map[string]*listener
	dialSeq     map[string]int64
	partitioned map[string]struct{}
	pairs       map[*pair]struct{}
	profile     Profile
	faults      []*Fault
	rec         func(actor, detail string)
}

// NewNet returns an empty network on tl, seeded with seed.
func NewNet(tl itime.Timeline, seed int64) *Net {
	if tl == nil {
		tl = itime.Real()
	}
	return &Net{
		tl:          tl,
		seed:        seed,
		listeners:   make(map[string]*listener),
		dialSeq:     make(map[string]int64),
		partitioned: make(map[string]struct{}),
		pairs:       make(map[*pair]struct{}),
	}
}

// Timeline returns the timeline the network runs on.
func (n *Net) Timeline() itime.Timeline { return n.tl }

// SetProfile installs the chaos profile for connections dialed from now on;
// existing connections keep the profile they were dialed under (their fate
// stays a function of their dial coordinates alone).
func (n *Net) SetProfile(p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.profile = p
}

// InjectFault arms one scripted fault. Multiple faults may be armed; the
// first match (in injection order) applies.
func (n *Net) InjectFault(f Fault) {
	n.mu.Lock()
	defer n.mu.Unlock()
	cp := f
	n.faults = append(n.faults, &cp)
}

// ClearFaults disarms all scripted faults.
func (n *Net) ClearFaults() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults = nil
}

// SetRecorder installs a hook receiving one line per injected fault and
// partition transition, keyed by a deterministic per-connection actor.
func (n *Net) SetRecorder(rec func(actor, detail string)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rec = rec
}

func (n *Net) record(actor, detail string) {
	n.mu.Lock()
	rec := n.rec
	n.mu.Unlock()
	if rec != nil {
		rec(actor, detail)
	}
}

// Partition isolates addr: every live connection to it is killed and every
// new dial refused until Heal. It models a network partition as seen from
// the clients of that address.
func (n *Net) Partition(addr string) {
	n.mu.Lock()
	n.partitioned[addr] = struct{}{}
	var victims []*pair
	for p := range n.pairs {
		if p.addr == addr {
			victims = append(victims, p)
		}
	}
	n.mu.Unlock()
	for _, p := range victims {
		p.kill()
	}
	n.record("net", "partition "+addr)
}

// Heal reconnects addr after a Partition.
func (n *Net) Heal(addr string) {
	n.mu.Lock()
	delete(n.partitioned, addr)
	n.mu.Unlock()
	n.record("net", "heal "+addr)
}

// matchFault finds and consumes the first scripted fault matching the
// operation. Callers may hold the pair's mutex; this takes only n.mu.
func (n *Net) matchFault(op string, p *pair, connOp int64) *Fault {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, f := range n.faults {
		if !f.matches(op, p, connOp) {
			continue
		}
		if f.Count > 0 {
			f.Count--
		}
		cp := *f
		return &cp
	}
	return nil
}

// Listen opens a listener on addr (any non-empty string; by convention
// "host:port"). One listener per address.
func (n *Net) Listen(addr string) (net.Listener, error) {
	if addr == "" {
		return nil, errors.New("sim: empty listen address")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("sim: address %s already in use", addr)
	}
	l := &listener{
		n:    n,
		addr: simAddr(addr),
		ch:   make(chan *Conn, 128),
		done: make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dialer returns a dial function bound to a stable label. The label, with
// the dialer's per-label dial counter, addresses the per-connection fault
// plan — give every logical client its own label and its connections'
// fates replay exactly from the net seed.
func (n *Net) Dialer(label string) func(ctx context.Context, addr string) (net.Conn, error) {
	return func(ctx context.Context, addr string) (net.Conn, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return n.dial(label, addr)
	}
}

func (n *Net) dial(label, addr string) (net.Conn, error) {
	n.mu.Lock()
	n.dialSeq[label]++
	seq := n.dialSeq[label]
	prof := n.profile
	lis := n.listeners[addr]
	_, parted := n.partitioned[addr]
	n.mu.Unlock()

	key := fmt.Sprintf("%s#%d>%s", label, seq, addr)
	p := &pair{
		n:       n,
		label:   label,
		addr:    addr,
		connSeq: seq,
		key:     key,
		profile: prof,
		rng:     rand.New(rand.NewSource(planSeed(n.seed, key))),
		ops:     1, // the dial itself
	}
	if f := n.matchFault("dial", p, 1); f != nil && f.Mode == Refuse {
		p.event("refuse dial")
		return nil, fmt.Errorf("sim: dial %s: %w", addr, ErrRefused)
	}
	if parted {
		p.event("refuse dial (partition)")
		return nil, fmt.Errorf("sim: dial %s: %w", addr, ErrRefused)
	}
	if lis == nil {
		return nil, fmt.Errorf("sim: dial %s: %w", addr, ErrRefused)
	}
	if prof.RefuseProb > 0 && p.rng.Float64() < prof.RefuseProb {
		p.event("refuse dial")
		return nil, fmt.Errorf("sim: dial %s: %w", addr, ErrRefused)
	}

	cli := &Conn{p: p, local: simAddr(key), remote: simAddr(addr)}
	srv := &Conn{p: p, local: simAddr(addr), remote: simAddr(key)}
	cli.cond = sync.NewCond(&cli.mu)
	srv.cond = sync.NewCond(&srv.mu)
	cli.peer, srv.peer = srv, cli
	p.cli, p.srv = cli, srv

	n.mu.Lock()
	n.pairs[p] = struct{}{}
	n.mu.Unlock()

	select {
	case lis.ch <- srv:
		return cli, nil
	default:
		n.forget(p)
		return nil, fmt.Errorf("sim: dial %s: backlog full: %w", addr, ErrRefused)
	}
}

func (n *Net) forget(p *pair) {
	n.mu.Lock()
	delete(n.pairs, p)
	n.mu.Unlock()
}

// planSeed folds a connection key into the net seed.
func planSeed(seed int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return seed ^ int64(h.Sum64())
}

// simAddr is a net.Addr on the simulated network.
type simAddr string

func (a simAddr) Network() string { return "sim" }
func (a simAddr) String() string  { return string(a) }

// listener implements net.Listener.
type listener struct {
	n    *Net
	addr simAddr
	ch   chan *Conn
	done chan struct{}
	once sync.Once
}

func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("sim: listener %s: %w", l.addr, errClosed)
	}
}

func (l *listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.n.mu.Lock()
		if l.n.listeners[string(l.addr)] == l {
			delete(l.n.listeners, string(l.addr))
		}
		l.n.mu.Unlock()
	})
	return nil
}

func (l *listener) Addr() net.Addr { return l.addr }

// action is what a write's fault plan decided.
type action int

const (
	actDeliver action = iota
	actDrop
	actKill
)

// pair is the shared state of one connection's two endpoints: the seeded
// fault plan, the per-connection operation counter, and the chaos profile
// snapshot it was dialed under. The wire protocol's strict request/response
// alternation makes the operation order on a pair deterministic, which is
// what lets per-write rng draws replay exactly.
type pair struct {
	n       *Net
	label   string
	addr    string
	connSeq int64
	key     string
	profile Profile

	mu         sync.Mutex
	rng        *rand.Rand
	ops        int64
	blackholed bool

	cli, srv *Conn
}

func (p *pair) event(detail string) {
	p.n.record(p.key, detail)
}

// kill resets both endpoints. Bytes already delivered (or in flight) are
// still readable first, as with a real RST racing buffered data.
func (p *pair) kill() {
	for _, c := range [2]*Conn{p.cli, p.srv} {
		if c == nil {
			continue
		}
		c.mu.Lock()
		c.killed = true
		c.cond.Broadcast()
		c.mu.Unlock()
	}
	p.n.forget(p)
}

// writeFault numbers one write and decides its fate.
func (p *pair) writeFault(size int64) (act action, keep int64, delay time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ops++
	op := p.ops
	if p.blackholed {
		return actDrop, 0, 0
	}
	if f := p.n.matchFault("write", p, op); f != nil {
		switch f.Mode {
		case Drop:
			p.blackholed = true
			p.event(fmt.Sprintf("drop w%d", op))
			return actDrop, 0, 0
		case Kill:
			keep = f.KeepBytes
			if keep >= size {
				keep = size - 1
			}
			if keep < 0 {
				keep = 0
			}
			p.event(fmt.Sprintf("kill w%d keep=%d", op, keep))
			return actKill, keep, p.delayLocked()
		case Delay:
			p.event(fmt.Sprintf("delay w%d", op))
			return actDeliver, 0, p.delayLocked() + f.Extra
		}
	}
	if p.profile.KillProb > 0 || p.profile.DropProb > 0 {
		r := p.rng.Float64()
		switch {
		case r < p.profile.KillProb:
			keep = p.rng.Int63n(size) // size >= 1: frames have a header
			p.event(fmt.Sprintf("kill w%d keep=%d", op, keep))
			return actKill, keep, p.delayLocked()
		case r < p.profile.KillProb+p.profile.DropProb:
			p.blackholed = true
			p.event(fmt.Sprintf("drop w%d", op))
			return actDrop, 0, 0
		}
	}
	return actDeliver, 0, p.delayLocked()
}

// delayLocked draws this write's one-way latency. Caller holds p.mu.
func (p *pair) delayLocked() time.Duration {
	lat := p.profile.Latency
	if p.profile.Jitter > 0 {
		lat += time.Duration(p.rng.Int63n(int64(p.profile.Jitter)))
	}
	return lat
}

// Conn is one endpoint of a simulated connection. It implements net.Conn;
// deadlines are interpreted on the network's timeline, so with a
// SimTimeline an idle timeout fires in virtual time.
type Conn struct {
	p      *pair
	peer   *Conn
	local  net.Addr
	remote net.Addr

	mu         sync.Mutex
	cond       *sync.Cond
	buf        []byte
	inflight   int   // latency-delayed deliveries headed my way
	nextArrive int64 // virtual nanos the latest in-flight delivery lands (FIFO chain)
	closed     bool
	peerClosed bool
	killed     bool
	rd, wd     int64 // deadlines in timeline nanos; 0 = none
	rdTimer    itime.Timer
}

func (c *Conn) LocalAddr() net.Addr  { return c.local }
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if len(c.buf) > 0 {
			n := copy(p, c.buf)
			c.buf = c.buf[n:]
			return n, nil
		}
		if c.closed {
			return 0, errClosed
		}
		// In-flight bytes still count as "on the wire": a reset or FIN
		// ordered after them must let them arrive first, or a mid-frame
		// kill's delivered prefix would be lost to interleaving.
		if c.inflight == 0 {
			if c.killed {
				return 0, errReset
			}
			if c.peerClosed {
				return 0, io.EOF
			}
		}
		if c.rd != 0 && c.p.n.tl.Now().UnixNano() >= c.rd {
			return 0, errTimeout
		}
		c.cond.Wait()
	}
}

func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, errClosed
	}
	if c.killed || c.peerClosed {
		c.mu.Unlock()
		return 0, errReset
	}
	if c.wd != 0 && c.p.n.tl.Now().UnixNano() >= c.wd {
		c.mu.Unlock()
		return 0, errTimeout
	}
	c.mu.Unlock()
	if len(p) == 0 {
		return 0, nil
	}

	act, keep, delay := c.p.writeFault(int64(len(p)))
	switch act {
	case actDrop:
		// The bytes vanish; the "kernel" accepted them, so the write
		// itself succeeds — exactly how a black-holed TCP send looks.
		return len(p), nil
	case actKill:
		c.deliver(p[:keep], delay)
		c.p.kill()
		return len(p), nil
	}
	c.deliver(p, delay)
	return len(p), nil
}

// deliver hands bytes to the peer, after delay on the timeline. Deliveries
// per direction form a FIFO chain: a later write never lands before an
// earlier one, whatever their jitter.
func (c *Conn) deliver(p []byte, delay time.Duration) {
	if len(p) == 0 {
		return
	}
	peer := c.peer
	if delay <= 0 {
		peer.mu.Lock()
		if peer.inflight == 0 {
			peer.buf = append(peer.buf, p...)
			peer.cond.Broadcast()
			peer.mu.Unlock()
			return
		}
		// Older deliveries are still in flight; join the chain at the back
		// to keep FIFO.
		peer.mu.Unlock()
	}
	data := append([]byte(nil), p...)
	now := c.p.n.tl.Now().UnixNano()
	peer.mu.Lock()
	at := now + int64(delay)
	if at < peer.nextArrive {
		at = peer.nextArrive
	}
	peer.nextArrive = at
	peer.inflight++
	peer.mu.Unlock()
	c.p.n.tl.AfterFunc(time.Duration(at-now)+time.Nanosecond, func() {
		peer.mu.Lock()
		peer.inflight--
		peer.buf = append(peer.buf, data...)
		peer.cond.Broadcast()
		peer.mu.Unlock()
	})
}

func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	if c.rdTimer != nil {
		c.rdTimer.Stop()
		c.rdTimer = nil
	}
	c.cond.Broadcast()
	c.mu.Unlock()

	peer := c.peer
	peer.mu.Lock()
	peer.peerClosed = true
	peer.cond.Broadcast()
	bothDown := peer.closed
	peer.mu.Unlock()
	if bothDown {
		c.p.n.forget(c.p)
	}
	return nil
}

func (c *Conn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	return c.SetWriteDeadline(t)
}

func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	if c.rdTimer != nil {
		c.rdTimer.Stop()
		c.rdTimer = nil
	}
	if t.IsZero() {
		c.rd = 0
		c.mu.Unlock()
		return nil
	}
	nanos := t.UnixNano()
	c.rd = nanos
	d := time.Duration(nanos - c.p.n.tl.Now().UnixNano())
	if d <= 0 {
		c.cond.Broadcast()
		c.mu.Unlock()
		return nil
	}
	// Arm a wake-up for when the timeline passes the deadline. The timer
	// may outlive a replaced deadline; Read re-checks rd against the clock,
	// so a stale broadcast is harmless.
	c.rdTimer = c.p.n.tl.AfterFunc(d, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	c.mu.Unlock()
	return nil
}

func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.IsZero() {
		c.wd = 0
	} else {
		c.wd = t.UnixNano()
	}
	return nil
}
