package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// Trace is the scenario event log. Determinism across concurrent actors is
// achieved by canonical ordering, not arrival ordering: every event is keyed
// (actor, per-actor sequence), and the hash is computed over the sorted
// lines — so however the goroutines interleave, the same per-actor histories
// hash identically. Details must therefore be per-actor deterministic:
// outcome classes rather than error strings, operation indices rather than
// timestamps.
type Trace struct {
	mu    sync.Mutex
	seqs  map[string]int
	lines []string
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{seqs: make(map[string]int)}
}

// Add appends one event to actor's history.
func (t *Trace) Add(actor, detail string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seqs[actor]++
	t.lines = append(t.lines, fmt.Sprintf("%s|%06d|%s", actor, t.seqs[actor], detail))
}

// Len is the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.lines)
}

// Lines returns the events in canonical (actor, sequence) order.
func (t *Trace) Lines() []string {
	t.mu.Lock()
	out := append([]string(nil), t.lines...)
	t.mu.Unlock()
	sort.Strings(out)
	return out
}

// Hash is the canonical SHA-256 of the trace, hex-encoded. Two runs of the
// same scenario with the same seed must produce byte-identical hashes.
func (t *Trace) Hash() string {
	h := sha256.New()
	for _, l := range t.Lines() {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
