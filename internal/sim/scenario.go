package sim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"immortaldb"
	"immortaldb/internal/admit"
	"immortaldb/internal/client"
	"immortaldb/internal/itime"
	"immortaldb/internal/repl"
	"immortaldb/internal/server"
	"immortaldb/internal/sqlish"
	"immortaldb/internal/workload"
)

// Scenario timing constants. All virtual. They are sized so that no
// deadline can fire across the virtual-time drift one healthy operation
// spans (the pump advances time between events at a nondeterministic
// real-time cadence, so semantics must not hinge on how much virtual time a
// microsecond of real work consumes) — while still resolving a black-holed
// connection in a couple of real seconds.
const (
	scnOpTimeout   = 5 * time.Minute
	scnIdleTimeout = 24 * time.Hour
	scnReqTimeout  = 30 * time.Minute
	scnBackoff     = 5 * time.Millisecond
	pumpPoll       = 200 * time.Microsecond
	pumpStep       = 100 * time.Millisecond
)

// Step is one entry of a scenario script. Exactly one field should be set;
// fault-schedule changes happen at phase barriers — between Ops steps, with
// no requests in flight — so a schedule change can never race an operation.
type Step struct {
	// Ops runs a phase: every client executes this many workload ops.
	Ops int
	// Partition isolates a server address (connections killed, dials
	// refused); Heal reconnects it.
	Partition, Heal string
	// Faults arms scripted faults; ClearFaults disarms all.
	Faults      []Fault
	ClearFaults bool
	// SyncReplicas runs one replication sync on every follower, in index
	// order, recording each outcome class in the trace. A follower whose
	// sync dies under a scripted fault simply stays behind until the next
	// sync step — the final verification syncs everyone over a clean
	// network first.
	SyncReplicas bool
	// KillServer abruptly stops a server: its address is partitioned and its
	// listener and connections close, simulating a primary crash. The engine
	// is never heard from again (the deposed primary stays out of the final
	// verification).
	KillServer string
	// Promote promotes the most-caught-up follower to a read-write primary:
	// bounded redo to its ingested end, log sealed, epoch fenced. A server
	// is booted over the promoted engine and every surviving follower is
	// retargeted at it.
	Promote bool
	// Repoint re-points every client pool at the current primary address
	// (the promoted survivor after a Promote step).
	Repoint bool
	// RefillQuotas refills every admission token bucket on every live server
	// to its burst capacity. Deterministic scenarios use manual-refill quotas
	// (Rate zero) and replenish them at script barriers, so every shed
	// decision is a pure function of each actor's operation sequence rather
	// than of the virtual-time pump's cadence.
	RefillQuotas bool
}

// Scenario describes one simulation: a cluster shape, a workload, a chaos
// profile, and a scripted fault schedule.
type Scenario struct {
	Name string
	// Servers and Clients set the cluster shape; client i talks to server
	// i mod Servers. Each server owns an independent database.
	Servers, Clients int
	// Followers boots this many WAL-shipping read replicas of server 0.
	// They sync at SyncReplicas script barriers (so fault coordinates stay
	// deterministic), and the post-run oracle replays every worker's AS OF
	// invoice audit against each replica: the totals must match exactly.
	Followers int
	// Workload is "metering" (default) or "moving".
	Workload string
	// Admission installs an admission-control gate on every server, including
	// a promoted survivor. Deterministic scenarios use manual-refill quotas;
	// see Step.RefillQuotas.
	Admission *admit.Config
	// ShedFree and MustShed are the admission oracle, by client index:
	// ShedFree workers must finish with zero sheds and zero errors (the
	// well-behaved tenant's goodput floor), MustShed workers must observe at
	// least one shed. Every worker, listed or not, must never see a shed
	// without a retry-after hint.
	ShedFree, MustShed []int
	// Profile is the probabilistic chaos profile for connections dialed
	// during op phases.
	Profile Profile
	Script  []Step
}

// Result is one scenario run's outcome.
type Result struct {
	Scenario string
	Seed     int64
	// Hash is the canonical trace hash; runs of the same scenario and seed
	// must produce byte-identical hashes.
	Hash   string
	Events int
	// Ops counts workload operations attempted; Errors those that failed
	// (network or server error).
	Ops, Errors int
	// Violations are oracle failures: an acked commit missing after heal,
	// or an AS OF invoice audit that does not match its recorded total.
	Violations []string
	Trace      *Trace
}

// Predefined returns a named scenario from the suite.
func Predefined(name string) (Scenario, bool) {
	switch name {
	case "smoke":
		return Scenario{
			Name: "smoke", Servers: 1, Clients: 2,
			Profile: Profile{Latency: time.Millisecond, Jitter: time.Millisecond},
			Script:  []Step{{Ops: 25}},
		}, true
	case "partition":
		return Scenario{
			Name: "partition", Servers: 2, Clients: 3,
			Profile: Profile{Latency: time.Millisecond, Jitter: 2 * time.Millisecond},
			Script: []Step{
				{Ops: 20},
				// Cut a request frame mid-write, black-hole a response, then
				// partition one server outright.
				{Faults: []Fault{
					{Dialer: "cli0", Op: "write", StartOp: 4, Count: 1, Mode: Kill, KeepBytes: 3},
					{Dialer: "cli1", Op: "write", StartOp: 5, Count: 1, Mode: Drop},
				}},
				{Ops: 12},
				{ClearFaults: true},
				{Partition: "srv1:7707"},
				{Ops: 10},
				{Heal: "srv1:7707"},
				{Ops: 20},
			},
		}, true
	case "churn":
		return Scenario{
			Name: "churn", Servers: 1, Clients: 4,
			Profile: Profile{
				Latency: 500 * time.Microsecond, Jitter: 2 * time.Millisecond,
				RefuseProb: 0.05, KillProb: 0.02, DropProb: 0.004,
			},
			Script: []Step{{Ops: 20}, {Ops: 20}},
		}, true
	case "replica-kill":
		return Scenario{
			Name: "replica-kill", Servers: 1, Clients: 2, Followers: 2,
			Profile: Profile{Latency: time.Millisecond, Jitter: time.Millisecond},
			Script: []Step{
				{Ops: 15},
				{SyncReplicas: true},
				// Cut follower 0's next sync mid-chunk: the 5th operation on
				// its next connection is the first shipped frame, and only 9
				// bytes of it — a frame header plus a sliver — arrive.
				{Faults: []Fault{{Dialer: "repl0", Op: "write", StartOp: 5, Count: 1, Mode: Kill, KeepBytes: 9}}},
				{Ops: 15},
				{SyncReplicas: true}, // repl0 dies mid-chunk, repl1 catches up
				{ClearFaults: true},
				{SyncReplicas: true}, // repl0 reconnects and resumes from its log end
				{Ops: 10},
			},
		}, true
	case "replica-partition":
		return Scenario{
			Name: "replica-partition", Servers: 1, Clients: 2, Followers: 2,
			Profile: Profile{Latency: time.Millisecond, Jitter: 2 * time.Millisecond},
			Script: []Step{
				{Ops: 12},
				{SyncReplicas: true},
				{Partition: "srv0:7707"},
				{SyncReplicas: true}, // both followers refused at dial
				{Heal: "srv0:7707"},
				{Ops: 12},
				{SyncReplicas: true},
			},
		}, true
	case "primary-kill-promote":
		return Scenario{
			Name: "primary-kill-promote", Servers: 1, Clients: 2, Followers: 2,
			Profile: Profile{Latency: time.Millisecond, Jitter: time.Millisecond},
			Script: []Step{
				{Ops: 15},
				{SyncReplicas: true},
				{Ops: 10},
				{SyncReplicas: true},
				// Doom every client frame: writes tear three bytes in, so no
				// commit can be acknowledged between the last sync barrier and
				// the kill — exactly the uncertainty window a real primary
				// crash leaves behind.
				{Faults: []Fault{
					{Dialer: "cli0", Op: "write", StartOp: 1, Count: -1, Mode: Kill, KeepBytes: 3},
					{Dialer: "cli1", Op: "write", StartOp: 1, Count: -1, Mode: Kill, KeepBytes: 3},
				}},
				{Ops: 4},
				{ClearFaults: true},
				{KillServer: "srv0:7707"},
				{Promote: true},
				{Repoint: true},
				{Ops: 12},
				{SyncReplicas: true},
			},
		}, true
	case "overload-storm":
		// Four tenants share one gated server: clients 2 and 3 are greedy —
		// their quota (six tokens per phase, replenished only at the script
		// barrier) sits far below their offered load — while client 1 holds
		// an explicit generous quota and client 0 runs untagged on the
		// default bucket. The greedy tenants must be shed, every shed must
		// carry a retry-after hint, and the well-behaved tenants must sail
		// through at full goodput. The concurrency limit is set above the
		// client count so the storm exercises the quota mechanism alone —
		// queue behavior would couple actors and is covered by unit tests.
		return Scenario{
			Name: "overload-storm", Servers: 1, Clients: 4,
			Profile: Profile{Latency: time.Millisecond, Jitter: time.Millisecond},
			Admission: &admit.Config{
				Default:   admit.Quota{Burst: 1e6},
				Tenant:    admit.Quota{Burst: 6},
				PerTenant: map[uint32]admit.Quota{1: {Burst: 1e6}},
				Limit:     64,
				MaxQueue:  16,
			},
			ShedFree: []int{0, 1},
			MustShed: []int{2, 3},
			Script:   []Step{{Ops: 14}, {RefillQuotas: true}, {Ops: 14}},
		}, true
	case "moving":
		return Scenario{
			Name: "moving", Servers: 1, Clients: 2, Workload: "moving",
			Profile: Profile{Latency: time.Millisecond, Jitter: time.Millisecond},
			Script: []Step{
				{Ops: 20},
				{Faults: []Fault{
					{Dialer: "cli1", Op: "write", StartOp: 6, Count: 1, Mode: Kill, KeepBytes: 5},
				}},
				{Ops: 20},
			},
		}, true
	}
	return Scenario{}, false
}

// ScenarioNames lists the predefined suite.
func ScenarioNames() []string {
	return []string{"smoke", "partition", "churn", "moving", "replica-kill", "replica-partition", "primary-kill-promote", "overload-storm"}
}

// Run executes one scenario under one seed: boots the cluster on a virtual
// timeline over a seeded simnet, drives the workload through the script,
// then heals the network and verifies the oracles — every acknowledged
// commit is present, and every AS OF invoice audit matched its recorded
// total during the run.
func Run(sc Scenario, seed int64) (*Result, error) {
	if sc.Servers <= 0 || sc.Clients <= 0 {
		return nil, errors.New("sim: scenario needs at least one server and one client")
	}
	tl := itime.NewSimTimeline(time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC))
	stopPump := tl.StartPump(pumpPoll, pumpStep)
	defer stopPump()

	n := NewNet(tl, seed)
	trace := NewTrace()
	n.SetRecorder(trace.Add)

	// Boot servers, each over its own database in a throwaway directory.
	type srvRec struct {
		addr string
		db   *immortaldb.DB
		srv  *server.Server
		dir  string
	}
	servers := make([]*srvRec, sc.Servers)
	defer func() {
		for _, r := range servers {
			if r == nil {
				continue
			}
			r.srv.Close()
			r.db.Close()
			os.RemoveAll(r.dir)
		}
	}()
	for i := range servers {
		dir, err := os.MkdirTemp("", "simscn")
		if err != nil {
			return nil, err
		}
		db, err := immortaldb.Open(dir, &immortaldb.Options{NoSync: true, Clock: tl})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		srv := server.New(db, server.Config{
			Clock:          tl,
			IdleTimeout:    scnIdleTimeout,
			RequestTimeout: scnReqTimeout,
			Admission:      sc.Admission,
		})
		addr := fmt.Sprintf("srv%d:7707", i)
		lis, err := n.Listen(addr)
		if err != nil {
			db.Close()
			os.RemoveAll(dir)
			return nil, err
		}
		if err := srv.ListenOn(lis); err != nil {
			db.Close()
			os.RemoveAll(dir)
			return nil, err
		}
		go srv.Serve()
		servers[i] = &srvRec{addr: addr, db: db, srv: srv, dir: dir}
	}

	// Schema setup over a clean network (the chaos profile is installed
	// after), so every worker starts from the same deterministic state.
	ctx := context.Background()
	for i, r := range servers {
		adb, err := client.Open(r.addr, &client.Options{
			MaxConns: 1, Dialer: n.Dialer(fmt.Sprintf("admin%d", i)),
			Timeline: tl, OpTimeout: scnOpTimeout, RetryBackoff: scnBackoff,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: admin dial %s: %w", r.addr, err)
		}
		var stmts []string
		if sc.Workload == "moving" {
			for w := 0; w < sc.Clients; w++ {
				if w%sc.Servers == i {
					stmts = append(stmts, fmt.Sprintf(
						"CREATE IMMORTAL TABLE mo%d (Oid smallint PRIMARY KEY, LocationX int, LocationY int)", w))
				}
			}
		} else {
			stmts = append(stmts, workload.MeterCreate())
		}
		for _, s := range stmts {
			if _, err := adb.Exec(ctx, s); err != nil {
				adb.Close()
				return nil, fmt.Errorf("sim: setup %q: %w", s, err)
			}
		}
		adb.Close()
	}

	// Followers of server 0, each replicating into its own directory. They
	// are paced by SyncReplicas script barriers rather than free-running, so
	// every replication connection's operation sequence — and therefore
	// every scripted fault coordinate on it — is deterministic.
	type folRec struct {
		f        *repl.Follower
		dir      string
		lastLSN  uint64
		promoted bool
	}
	followers := make([]*folRec, sc.Followers)
	defer func() {
		for _, fr := range followers {
			if fr == nil {
				continue
			}
			fr.f.Close()
			os.RemoveAll(fr.dir)
		}
	}()
	for i := range followers {
		dir, err := os.MkdirTemp("", "simrepl")
		if err != nil {
			return nil, err
		}
		f := repl.NewFollower(repl.Config{
			Dir:          dir,
			Addr:         servers[0].addr,
			DBOptions:    &immortaldb.Options{NoSync: true, Clock: tl},
			Dialer:       n.Dialer(fmt.Sprintf("repl%d", i)),
			Timeline:     tl,
			OpTimeout:    scnOpTimeout,
			DialTimeout:  scnOpTimeout,
			RetryBackoff: scnBackoff,
			MaxPull:      512, // small pulls: several frames per sync to fault
		})
		followers[i] = &folRec{f: f, dir: dir}
	}
	var folViolations []string
	syncReplicas := func() {
		for i, fr := range followers {
			if fr.promoted {
				continue // the survivor is the primary now; nothing to sync
			}
			err := fr.f.Sync(ctx)
			class := "ok"
			var rerr *repl.ReplError
			switch {
			case err == nil:
			case errors.As(err, &rerr) && rerr.Retryable():
				class = "gap"
			default:
				class = "neterr"
			}
			trace.Add(fmt.Sprintf("repl%d", i), "sync "+class)
			// The horizon oracle: a replica's applied position never moves
			// backwards, however its syncs die — even across a base re-seed,
			// which lands it further ahead, never behind.
			if h := fr.f.Horizon(); h.AppliedLSN < fr.lastLSN {
				folViolations = append(folViolations, fmt.Sprintf(
					"repl%d: horizon regressed %d -> %d", i, fr.lastLSN, h.AppliedLSN))
			} else {
				fr.lastLSN = h.AppliedLSN
			}
		}
	}

	n.SetProfile(sc.Profile)

	// Workers.
	workers := make([]*scnWorker, sc.Clients)
	totalOps := 0
	for _, st := range sc.Script {
		totalOps += st.Ops
	}
	for i := range workers {
		workers[i] = newScnWorker(i, sc, servers[i%sc.Servers].addr, n, tl, trace, seed, totalOps)
	}
	defer func() {
		for _, w := range workers {
			w.close()
		}
	}()

	// Failover state: the cluster's current primary address, which servers
	// have been killed, and the server booted over a promoted follower.
	primaryAddr := servers[0].addr
	killed := make(map[string]bool)
	var promotedSrv *server.Server
	var promotedAddr string
	defer func() {
		if promotedSrv != nil {
			promotedSrv.Close()
		}
	}()

	// Script.
	for si, st := range sc.Script {
		switch {
		case st.Ops > 0:
			trace.Add("run", fmt.Sprintf("phase %d ops=%d", si, st.Ops))
			var wg sync.WaitGroup
			for _, w := range workers {
				wg.Add(1)
				go func(w *scnWorker) {
					defer wg.Done()
					for k := 0; k < st.Ops; k++ {
						w.runOp(ctx)
					}
				}(w)
			}
			wg.Wait()
		case st.Partition != "":
			n.Partition(st.Partition)
		case st.Heal != "":
			n.Heal(st.Heal)
		case st.SyncReplicas:
			trace.Add("run", fmt.Sprintf("phase %d sync replicas", si))
			syncReplicas()
		case st.KillServer != "":
			n.Partition(st.KillServer)
			for _, r := range servers {
				if r.addr == st.KillServer {
					r.srv.Close()
					killed[r.addr] = true
				}
			}
			trace.Add("run", "kill "+st.KillServer)
		case st.Promote:
			// Promote the most-caught-up follower: ties break toward the
			// lowest index, so the choice is a pure function of the trace.
			best := -1
			var bestLSN uint64
			for i, fr := range followers {
				if fr.promoted {
					continue
				}
				if h := fr.f.Horizon(); best == -1 || h.AppliedLSN > bestLSN {
					best, bestLSN = i, h.AppliedLSN
				}
			}
			if best == -1 {
				return nil, errors.New("sim: promote step with no follower to promote")
			}
			fr := followers[best]
			epoch, err := fr.f.Promote()
			if err != nil {
				return nil, fmt.Errorf("sim: promote repl%d: %w", best, err)
			}
			fr.promoted = true
			fdb := fr.f.DB()
			if fdb == nil {
				return nil, fmt.Errorf("sim: promoted repl%d has no engine", best)
			}
			psrv := server.New(fdb, server.Config{
				Clock:          tl,
				IdleTimeout:    scnIdleTimeout,
				RequestTimeout: scnReqTimeout,
				Admission:      sc.Admission,
			})
			promotedAddr = fmt.Sprintf("fol%d:7707", best)
			plis, err := n.Listen(promotedAddr)
			if err != nil {
				return nil, fmt.Errorf("sim: listen on promoted %s: %w", promotedAddr, err)
			}
			if err := psrv.ListenOn(plis); err != nil {
				return nil, fmt.Errorf("sim: promoted server: %w", err)
			}
			go psrv.Serve()
			promotedSrv = psrv
			primaryAddr = promotedAddr
			for i, other := range followers {
				if i == best || other.promoted {
					continue
				}
				if err := other.f.Retarget(primaryAddr); err != nil {
					return nil, fmt.Errorf("sim: retarget repl%d: %w", i, err)
				}
				trace.Add(fmt.Sprintf("repl%d", i), "retarget")
			}
			trace.Add("run", fmt.Sprintf("promote repl%d epoch=%d fence=%d", best, epoch, fr.f.Horizon().AppliedLSN))
		case st.Repoint:
			for _, w := range workers {
				if w.db != nil {
					w.db.Repoint(primaryAddr)
				}
				w.addr = primaryAddr
			}
			trace.Add("run", "repoint clients "+primaryAddr)
		case st.RefillQuotas:
			for _, r := range servers {
				if killed[r.addr] {
					continue
				}
				if g := r.srv.Gate(); g != nil {
					g.Refill()
				}
			}
			if promotedSrv != nil {
				if g := promotedSrv.Gate(); g != nil {
					g.Refill()
				}
			}
			trace.Add("run", "refill quotas")
		case st.ClearFaults:
			n.ClearFaults()
			trace.Add("run", "clear faults")
		case len(st.Faults) > 0:
			for _, f := range st.Faults {
				n.InjectFault(f)
			}
			trace.Add("run", fmt.Sprintf("arm %d faults", len(st.Faults)))
		}
	}

	// Heal everything and verify over a clean network. Killed servers stay
	// dead: their engines left the cluster at the kill and the promoted
	// survivor answers for their clients.
	n.ClearFaults()
	n.SetProfile(Profile{})
	for _, r := range servers {
		if !killed[r.addr] {
			n.Heal(r.addr)
		}
	}
	// The oracle phase must observe everything: flip every gate to
	// pass-through so verification reads are never shed on quotas the
	// workload just exhausted.
	for _, r := range servers {
		if g := r.srv.Gate(); g != nil {
			g.SetBypass(true)
		}
	}
	if promotedSrv != nil {
		if g := promotedSrv.Gate(); g != nil {
			g.SetBypass(true)
		}
	}

	res := &Result{Scenario: sc.Name, Seed: seed, Trace: trace}
	verifyAddrs := make([]string, 0, len(servers)+1)
	for _, r := range servers {
		if !killed[r.addr] {
			verifyAddrs = append(verifyAddrs, r.addr)
		}
	}
	if promotedAddr != "" {
		verifyAddrs = append(verifyAddrs, promotedAddr)
	}
	for i, addr := range verifyAddrs {
		vdb, err := client.Open(addr, &client.Options{
			MaxConns: 1, Dialer: n.Dialer(fmt.Sprintf("verify%d", i)),
			Timeline: tl, OpTimeout: scnOpTimeout, RetryBackoff: scnBackoff,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: verify dial %s: %w", addr, err)
		}
		for _, w := range workers {
			if w.addr == addr {
				res.Violations = append(res.Violations, w.verify(ctx, vdb)...)
			}
		}
		vdb.Close()
	}
	for _, w := range workers {
		res.Ops += w.ops
		res.Errors += w.errs
		res.Violations = append(res.Violations, w.violations...)
	}

	// Admission oracle: the well-behaved tenants' goodput floor (never shed,
	// never errored while the greedy tenants starved), the greedy tenants'
	// backpressure (actually shed), and cooperative shedding everywhere —
	// every shed must have carried a retry-after hint.
	for _, i := range sc.ShedFree {
		if w := workers[i]; w.shed != 0 || w.errs != 0 {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"cli%d: goodput floor broken: shed=%d errs=%d", i, w.shed, w.errs))
		}
	}
	for _, i := range sc.MustShed {
		if workers[i].shed == 0 {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"cli%d: greedy tenant was never shed", i))
		}
	}
	for _, w := range workers {
		if w.shedBad != 0 {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"cli%d: %d sheds carried no retry-after hint", w.id, w.shedBad))
		}
	}

	// Replica oracle. A replica only serves AS OF instants at or below its
	// horizon — the newest commit timestamp it has applied — and the last
	// invoice close instant lies after the last workload commit. One fence
	// commit on the primary pushes the replicated horizon past every
	// recorded close instant, exactly as any later primary activity would.
	if len(followers) > 0 {
		fcli, err := client.Open(primaryAddr, &client.Options{
			MaxConns: 1, Dialer: n.Dialer("fence"),
			Timeline: tl, OpTimeout: scnOpTimeout, RetryBackoff: scnBackoff,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: fence dial: %w", err)
		}
		for _, stmt := range []string{
			"CREATE IMMORTAL TABLE repl_fence (id int PRIMARY KEY, v int)",
			"INSERT INTO repl_fence VALUES (1, 1)",
		} {
			if _, err := fcli.Exec(ctx, stmt); err != nil {
				fcli.Close()
				return nil, fmt.Errorf("sim: fence %q: %w", stmt, err)
			}
		}
		fcli.Close()
	}

	// One clean-network sync brings every follower to the primary's flushed
	// end (nothing writes anymore), then every worker's AS OF invoice audit
	// replays against every replica — the replication horizon covers each
	// recorded close instant, and the copied history must produce the exact
	// recorded totals. A promoted survivor skips the sync (it IS the
	// primary) but is audited the same way: its history must reproduce every
	// invoice closed before and after the failover.
	for fi, fr := range followers {
		if !fr.promoted {
			if err := fr.f.Sync(ctx); err != nil {
				return nil, fmt.Errorf("sim: final replica %d sync: %w", fi, err)
			}
			trace.Add(fmt.Sprintf("repl%d", fi), "sync ok")
		}
		fdb := fr.f.DB()
		if fdb == nil {
			return nil, fmt.Errorf("sim: replica %d has no engine after final sync", fi)
		}
		sess := sqlish.NewSession(fdb)
		for _, w := range workers {
			for _, period := range w.invoicePeriods() {
				inv := w.invoices[period]
				got, err := replicaSumAsOf(sess, uint32(w.id), period, inv.asOf, w.gen.RowSeqs(period))
				if err != nil {
					sess.Close()
					return nil, fmt.Errorf("sim: replica %d audit cli%d p%d: %w", fi, w.id, period, err)
				}
				if got != inv.total {
					res.Violations = append(res.Violations, fmt.Sprintf(
						"repl%d: AS OF audit of cli%d period %d read %d, invoice recorded %d",
						fi, w.id, period, got, inv.total))
					trace.Add(fmt.Sprintf("repl%d", fi), fmt.Sprintf(
						"audit cli%d p%d MISMATCH got=%d want=%d", w.id, period, got, inv.total))
					continue
				}
				trace.Add(fmt.Sprintf("repl%d", fi), fmt.Sprintf(
					"audit cli%d p%d match total=%d", w.id, period, got))
			}
		}
		sess.Close()
	}
	res.Violations = append(res.Violations, folViolations...)

	res.Hash = trace.Hash()
	res.Events = trace.Len()
	return res, nil
}

// invoicePeriods lists a metering worker's closed periods in ascending
// order (empty for moving-objects workers).
func (w *scnWorker) invoicePeriods() []uint32 {
	if w.gen == nil {
		return nil
	}
	periods := make([]uint32, 0, len(w.invoices))
	for p := range w.invoices {
		periods = append(periods, p)
	}
	sort.Slice(periods, func(i, j int) bool { return periods[i] < periods[j] })
	return periods
}

// replicaSumAsOf totals one period's meter rows on a replica inside one AS
// OF transaction, through the same SQL surface clients use.
func replicaSumAsOf(sess *sqlish.Session, tenant, period uint32, asOf string, seqs []uint32) (int64, error) {
	if _, err := sess.Exec(fmt.Sprintf("BEGIN TRAN AS OF %q", asOf)); err != nil {
		return 0, err
	}
	var total int64
	for _, seq := range seqs {
		res, err := sess.Exec(workload.MeterSelect(tenant, period, seq))
		if err != nil {
			sess.Exec("ROLLBACK")
			return 0, err
		}
		if len(res.Rows) == 0 {
			continue
		}
		v, err := strconv.ParseInt(res.Rows[0][0], 10, 64)
		if err != nil {
			sess.Exec("ROLLBACK")
			return 0, err
		}
		total += v
	}
	if _, err := sess.Exec("COMMIT"); err != nil {
		return 0, err
	}
	return total, nil
}

// invoice is a closed billing period's recorded total and the AS OF instant
// audits replay it at.
type invoice struct {
	total int64
	asOf  string
}

// scnWorker is one simulated client: a pooled connection, a deterministic
// workload stream, and the bookkeeping the oracles check.
type scnWorker struct {
	id    int
	actor string
	addr  string
	tl    itime.Timeline
	trace *Trace
	db    *client.DB

	// Metering state.
	gen      *workload.MeterGen
	invoices map[uint32]invoice

	// Moving-objects state.
	stream []workload.Op
	next   int
	table  string

	// acked maps key (stringified) to the last value the server definitely
	// acknowledged; uncertain marks keys whose last write got a network
	// error (it may or may not have applied).
	acked     map[int64]int64
	ackedMO   map[uint16]bool
	uncertain map[int64]bool

	ops, errs int
	// shed counts operations the gate refused (class "overloaded"); shedBad
	// counts the subset that arrived without a retry-after hint — the
	// admission oracle requires it to stay zero everywhere.
	shed, shedBad int
	violations    []string
}

func newScnWorker(id int, sc Scenario, addr string, n *Net, tl itime.Timeline, trace *Trace, seed int64, totalOps int) *scnWorker {
	w := &scnWorker{
		id:        id,
		actor:     fmt.Sprintf("cli%d", id),
		addr:      addr,
		tl:        tl,
		trace:     trace,
		invoices:  make(map[uint32]invoice),
		acked:     make(map[int64]int64),
		ackedMO:   make(map[uint16]bool),
		uncertain: make(map[int64]bool),
	}
	if sc.Workload == "moving" {
		w.table = fmt.Sprintf("mo%d", id)
		gen := workload.New(workload.Config{Seed: seed ^ int64(id)<<21})
		inserts := totalOps/10 + 1
		w.stream, _ = gen.Stream(inserts, totalOps)
	} else {
		w.gen = workload.NewMeterGen(uint32(id), seed)
	}
	db, err := client.Open(addr, &client.Options{
		MaxConns:     1,
		Dialer:       n.Dialer(w.actor),
		Timeline:     tl,
		OpTimeout:    scnOpTimeout,
		RetryBackoff: scnBackoff,
		RetryBudget:  2 * time.Minute, // real time: the harness's patience
	})
	if err != nil {
		// A chaos profile can deterministically refuse every dial attempt;
		// the worker then sits the scenario out (recorded, so it hashes).
		trace.Add(w.actor, "open "+classify(err))
		return w
	}
	w.db = db
	return w
}

func (w *scnWorker) close() {
	if w.db != nil {
		w.db.Close()
	}
}

// classify folds an operation error into a per-plan-deterministic outcome
// class. Error strings and timestamps stay out of the trace.
func classify(err error) string {
	var re *client.RemoteError
	switch {
	case err == nil:
		return "ok"
	case errors.As(err, &re) && strings.Contains(re.Msg, "duplicate primary key"):
		return "dup"
	case errors.As(err, &re) && re.Overloaded():
		return "overloaded"
	case errors.As(err, &re):
		return "remote"
	default:
		return "neterr"
	}
}

// classify folds one operation's final error into its trace class, counting
// sheds — and sheds that arrived without a retry-after hint — for the
// admission oracle.
func (w *scnWorker) classify(err error) string {
	class := classify(err)
	if class == "overloaded" {
		w.shed++
		var re *client.RemoteError
		if !errors.As(err, &re) || re.RetryAfter <= 0 {
			w.shedBad++
		}
	}
	return class
}

func (w *scnWorker) event(detail string) { w.trace.Add(w.actor, detail) }

func (w *scnWorker) runOp(ctx context.Context) {
	if w.db == nil {
		return
	}
	w.ops++
	if w.stream != nil {
		w.runMovingOp(ctx)
		return
	}
	op := w.gen.Next()
	switch op.Kind {
	case workload.MeterAppend:
		_, err := w.db.Exec(ctx, op.Statement())
		class := w.classify(err)
		key := workload.MeterKey(op.Tenant, op.Period, op.Seq)
		switch class {
		case "ok", "dup":
			// "dup" after a network hiccup means the first attempt did
			// execute: the pool's transparent retry re-ran the INSERT and
			// the engine reported the row already present. Either way the
			// commit is acknowledged.
			w.acked[key] = op.Amount
		case "neterr":
			w.errs++
			w.uncertain[key] = true
		default:
			w.errs++
		}
		w.event(fmt.Sprintf("append p%d r%d %s", op.Period, op.Seq, class))
	case workload.MeterClose:
		total, err := w.sumCurrent(ctx, op.Period)
		if err != nil {
			w.errs++
			w.event(fmt.Sprintf("close p%d %s", op.Period, w.classify(err)))
			return
		}
		// Quarantine the AS OF capture by two ticks on each side, so every
		// prior commit's tick is strictly before it and every later
		// correction's strictly after — the timestamps themselves never
		// appear in the trace, only the totals.
		w.tl.Sleep(ctx, 2*itime.TickDuration)
		asOf := w.tl.Now().UTC().Format(time.RFC3339Nano)
		w.tl.Sleep(ctx, 2*itime.TickDuration)
		w.invoices[op.Period] = invoice{total: total, asOf: asOf}
		w.event(fmt.Sprintf("close p%d total=%d", op.Period, total))
	case workload.MeterCorrect:
		_, err := w.db.Exec(ctx, op.Statement())
		class := w.classify(err)
		key := workload.MeterKey(op.Tenant, op.Period, op.Seq)
		switch class {
		case "ok":
			if _, was := w.acked[key]; was {
				w.acked[key] = op.Amount
			}
		case "neterr":
			w.errs++
			w.uncertain[key] = true
		default:
			w.errs++
		}
		w.event(fmt.Sprintf("correct p%d r%d %s", op.Period, op.Seq, class))
	case workload.MeterAudit:
		inv, ok := w.invoices[op.Period]
		if !ok {
			w.event(fmt.Sprintf("audit p%d unrecorded", op.Period))
			return
		}
		got, err := w.sumAsOf(ctx, op.Period, inv.asOf)
		if err != nil {
			w.errs++
			w.event(fmt.Sprintf("audit p%d %s", op.Period, w.classify(err)))
			return
		}
		if got != inv.total {
			w.violations = append(w.violations, fmt.Sprintf(
				"cli%d: AS OF audit of period %d read %d, invoice recorded %d",
				w.id, op.Period, got, inv.total))
			w.event(fmt.Sprintf("audit p%d MISMATCH got=%d want=%d", op.Period, got, inv.total))
			return
		}
		w.event(fmt.Sprintf("audit p%d match total=%d", op.Period, got))
	}
}

// sumCurrent totals a period's rows with current-state point reads.
func (w *scnWorker) sumCurrent(ctx context.Context, period uint32) (int64, error) {
	var total int64
	for _, seq := range w.gen.RowSeqs(period) {
		res, err := w.db.Exec(ctx, workload.MeterSelect(uint32(w.id), period, seq))
		if err != nil {
			return 0, err
		}
		if len(res.Rows) == 0 {
			continue // that append never landed
		}
		v, err := strconv.ParseInt(res.Rows[0][0], 10, 64)
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// sumAsOf totals a period's rows as of the recorded close instant, inside
// one AS OF transaction.
func (w *scnWorker) sumAsOf(ctx context.Context, period uint32, asOf string) (int64, error) {
	tx, err := w.db.BeginAsOf(ctx, asOf)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, seq := range w.gen.RowSeqs(period) {
		res, err := tx.Exec(ctx, workload.MeterSelect(uint32(w.id), period, seq))
		if err != nil {
			tx.Rollback(ctx)
			return 0, err
		}
		if len(res.Rows) == 0 {
			continue
		}
		v, perr := strconv.ParseInt(res.Rows[0][0], 10, 64)
		if perr != nil {
			tx.Rollback(ctx)
			return 0, perr
		}
		total += v
	}
	if err := tx.Commit(ctx); err != nil {
		return 0, err
	}
	return total, nil
}

// runMovingOp executes the next moving-objects stream op.
func (w *scnWorker) runMovingOp(ctx context.Context) {
	if w.next >= len(w.stream) {
		return
	}
	op := w.stream[w.next]
	w.next++
	var sql string
	if op.Kind == workload.OpInsert {
		sql = fmt.Sprintf("INSERT INTO %s VALUES (%d, %d, %d)", w.table, op.OID, op.Pos.X, op.Pos.Y)
	} else {
		sql = fmt.Sprintf("UPDATE %s SET LocationX = %d WHERE Oid = %d", w.table, op.Pos.X, op.OID)
	}
	_, err := w.db.Exec(ctx, sql)
	class := w.classify(err)
	if op.Kind == workload.OpInsert && (class == "ok" || class == "dup") {
		w.ackedMO[op.OID] = true
	}
	if class != "ok" && class != "dup" {
		w.errs++
	}
	w.event(fmt.Sprintf("%s o%d %s", op.Kind, op.OID, class))
}

// verify checks the no-acked-commit-loss oracle over a healed network: every
// key the server acknowledged must be present, with the acknowledged value
// unless a later write on it was network-uncertain.
func (w *scnWorker) verify(ctx context.Context, vdb *client.DB) []string {
	var out []string
	if w.stream != nil {
		for oid := range w.ackedMO {
			res, err := vdb.Exec(ctx, fmt.Sprintf("SELECT Oid FROM %s WHERE Oid = %d", w.table, oid))
			if err != nil {
				out = append(out, fmt.Sprintf("cli%d: verify read of object %d failed", w.id, oid))
				continue
			}
			if len(res.Rows) == 0 {
				out = append(out, fmt.Sprintf("cli%d: acked insert of object %d lost", w.id, oid))
			}
		}
		return out
	}
	for key, want := range w.acked {
		res, err := vdb.Exec(ctx, fmt.Sprintf("SELECT amount FROM meter WHERE k = %d", key))
		if err != nil {
			out = append(out, fmt.Sprintf("cli%d: verify read of key %d failed", w.id, key))
			continue
		}
		if len(res.Rows) == 0 {
			out = append(out, fmt.Sprintf("cli%d: acked commit on key %d lost", w.id, key))
			continue
		}
		if w.uncertain[key] {
			continue
		}
		if got, _ := strconv.ParseInt(res.Rows[0][0], 10, 64); got != want {
			out = append(out, fmt.Sprintf("cli%d: key %d holds %d, acked %d", w.id, key, got, want))
		}
	}
	return out
}
