package sim

import (
	"strings"
	"testing"
)

// runScenario runs a predefined scenario under one seed and fails the test
// on harness errors or oracle violations.
func runScenario(t *testing.T, name string, seed int64) *Result {
	t.Helper()
	sc, ok := Predefined(name)
	if !ok {
		t.Fatalf("unknown scenario %q", name)
	}
	res, err := Run(sc, seed)
	if err != nil {
		t.Fatalf("run %s seed %d: %v", name, seed, err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s seed %d violation: %s", name, seed, v)
	}
	return res
}

// TestScenarioSmokeDeterminism is the determinism proof: two runs of the
// same scenario with the same seed must produce byte-identical trace hashes.
func TestScenarioSmokeDeterminism(t *testing.T) {
	a := runScenario(t, "smoke", 7)
	b := runScenario(t, "smoke", 7)
	if a.Hash != b.Hash {
		diffTraces(t, a, b)
	}
	if a.Events == 0 || a.Ops == 0 {
		t.Fatalf("empty run: %d events, %d ops", a.Events, a.Ops)
	}
}

// TestScenarioPartitionKillNoAckedLoss runs the partition/kill scenario
// twice: identical hashes, chaos demonstrably happened (errors observed,
// connections faulted), no acked commit was lost (runScenario fails on
// violations), and AS OF invoice audits matched their recorded totals.
func TestScenarioPartitionKillNoAckedLoss(t *testing.T) {
	a := runScenario(t, "partition", 11)
	b := runScenario(t, "partition", 11)
	if a.Hash != b.Hash {
		diffTraces(t, a, b)
	}
	if a.Errors == 0 {
		t.Error("partition scenario saw no errors; faults did not bite")
	}
	var audits, faults int
	for _, l := range a.Trace.Lines() {
		if strings.Contains(l, "audit p") && strings.Contains(l, " match ") {
			audits++
		}
		if strings.Contains(l, "|kill w") || strings.Contains(l, "|drop w") ||
			strings.Contains(l, "partition ") {
			faults++
		}
	}
	if audits == 0 {
		t.Error("no successful AS OF audits; the oracle never ran")
	}
	if faults == 0 {
		t.Error("no fault events in trace")
	}
}

// TestScenarioReplicaKill cuts a follower's sync mid-chunk and proves the
// replica suite's contract: identical hashes across runs, the scripted kill
// visibly bit a replication connection, the follower recovered by resuming
// from its own log end, and every AS OF invoice audit replayed on both
// replicas matches the primary's recorded totals exactly (runScenario fails
// on violations).
func TestScenarioReplicaKill(t *testing.T) {
	a := runScenario(t, "replica-kill", 13)
	b := runScenario(t, "replica-kill", 13)
	if a.Hash != b.Hash {
		diffTraces(t, a, b)
	}
	var replKills, replAudits, syncErrs int
	for _, l := range a.Trace.Lines() {
		if strings.HasPrefix(l, "repl0#") && strings.Contains(l, "kill w") {
			replKills++
		}
		if strings.HasPrefix(l, "repl") && strings.Contains(l, " match ") {
			replAudits++
		}
		if strings.Contains(l, "sync neterr") {
			syncErrs++
		}
	}
	if replKills == 0 {
		t.Error("no kill fault landed on a replication connection")
	}
	if syncErrs == 0 {
		t.Error("no follower sync died; the mid-chunk kill did not bite")
	}
	if replAudits == 0 {
		t.Error("no AS OF audits replayed on the replicas")
	}
}

// TestScenarioReplicaPartition isolates the primary while followers try to
// sync: refused dials are recorded deterministically, and after heal the
// replicas catch up and pass every AS OF audit.
func TestScenarioReplicaPartition(t *testing.T) {
	a := runScenario(t, "replica-partition", 17)
	b := runScenario(t, "replica-partition", 17)
	if a.Hash != b.Hash {
		diffTraces(t, a, b)
	}
	var refused, replAudits int
	for _, l := range a.Trace.Lines() {
		if strings.HasPrefix(l, "repl") && strings.Contains(l, "refuse dial") {
			refused++
		}
		if strings.HasPrefix(l, "repl") && strings.Contains(l, " match ") {
			replAudits++
		}
	}
	if refused == 0 {
		t.Error("no follower dial was refused during the partition")
	}
	if replAudits == 0 {
		t.Error("no AS OF audits replayed on the replicas")
	}
}

func TestScenarioChurnDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("churn scenario is slow under -short")
	}
	a := runScenario(t, "churn", 3)
	b := runScenario(t, "churn", 3)
	if a.Hash != b.Hash {
		diffTraces(t, a, b)
	}
}

// TestScenarioOverloadStorm runs the admission-control storm twice:
// identical hashes, the greedy tenants demonstrably shed (with hints —
// runScenario fails on the shedBad violation), and the well-behaved tenants'
// goodput floor held. Shed decisions must be a pure function of each actor's
// operation sequence: manual-refill quotas replenish only at the script
// barrier, so the trace cannot depend on the virtual-time pump's cadence.
func TestScenarioOverloadStorm(t *testing.T) {
	a := runScenario(t, "overload-storm", 1)
	b := runScenario(t, "overload-storm", 1)
	if a.Hash != b.Hash {
		diffTraces(t, a, b)
	}
	var shed, refills int
	for _, l := range a.Trace.Lines() {
		if strings.Contains(l, " overloaded") {
			shed++
		}
		if strings.Contains(l, "refill quotas") {
			refills++
		}
	}
	if shed == 0 {
		t.Error("no overloaded events in trace; the quotas never bit")
	}
	if refills != 1 {
		t.Errorf("trace records %d refill barriers, want 1", refills)
	}
	if a.Errors == 0 {
		t.Error("storm saw no errors; greedy tenants were never pushed back")
	}
}

func TestScenarioMovingWorkload(t *testing.T) {
	res := runScenario(t, "moving", 5)
	if res.Ops == 0 || res.Events == 0 {
		t.Fatalf("empty moving run: %+v", res)
	}
}

// diffTraces reports the first few differing canonical trace lines.
func diffTraces(t *testing.T, a, b *Result) {
	t.Helper()
	la, lb := a.Trace.Lines(), b.Trace.Lines()
	t.Errorf("hashes differ: %s vs %s (%d vs %d events)", a.Hash, b.Hash, len(la), len(lb))
	shown := 0
	for i := 0; i < len(la) || i < len(lb); i++ {
		var x, y string
		if i < len(la) {
			x = la[i]
		}
		if i < len(lb) {
			y = lb[i]
		}
		if x != y {
			t.Errorf("line %d:\n  run1: %s\n  run2: %s", i, x, y)
			if shown++; shown >= 8 {
				break
			}
		}
	}
	t.FailNow()
}
