package sim

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"immortaldb/internal/itime"
)

func newTestNet(t *testing.T, seed int64) (*Net, *itime.SimTimeline) {
	t.Helper()
	tl := itime.NewSimTimeline(time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC))
	return NewNet(tl, seed), tl
}

// accept returns the server end of the next dialed connection.
func accept(t *testing.T, lis net.Listener) net.Conn {
	t.Helper()
	ch := make(chan net.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			close(ch)
			return
		}
		ch <- c
	}()
	select {
	case c, ok := <-ch:
		if !ok {
			t.Fatal("accept failed")
		}
		return c
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
	}
	return nil
}

func TestSimnetRoundTripAndEOF(t *testing.T) {
	n, _ := newTestNet(t, 1)
	lis, err := n.Listen("a:1")
	if err != nil {
		t.Fatal(err)
	}
	dial := n.Dialer("cli")
	cli, err := dial(context.Background(), "a:1")
	if err != nil {
		t.Fatal(err)
	}
	srv := accept(t, lis)

	if _, err := cli.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	k, err := srv.Read(buf)
	if err != nil || string(buf[:k]) != "ping" {
		t.Fatalf("server read %q, %v", buf[:k], err)
	}
	if _, err := srv.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	k, err = cli.Read(buf)
	if err != nil || string(buf[:k]) != "pong" {
		t.Fatalf("client read %q, %v", buf[:k], err)
	}

	// FIN: the peer drains buffered data, then sees EOF.
	if _, err := cli.Write([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	k, err = srv.Read(buf)
	if err != nil || string(buf[:k]) != "bye" {
		t.Fatalf("read before EOF: %q, %v", buf[:k], err)
	}
	if _, err := srv.Read(buf); err != io.EOF {
		t.Fatalf("after FIN: %v, want EOF", err)
	}
	if _, err := cli.Write([]byte("x")); err == nil {
		t.Fatal("write on closed conn succeeded")
	}
}

func TestSimnetLatencyIsVirtual(t *testing.T) {
	n, tl := newTestNet(t, 2)
	n.SetProfile(Profile{Latency: 50 * time.Millisecond})
	lis, _ := n.Listen("a:1")
	cli, err := n.Dialer("cli")(context.Background(), "a:1")
	if err != nil {
		t.Fatal(err)
	}
	srv := accept(t, lis)
	if _, err := cli.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}

	got := make(chan byte, 1)
	go func() {
		buf := make([]byte, 1)
		if _, err := srv.Read(buf); err == nil {
			got <- buf[0]
		}
	}()
	// Nothing may arrive while virtual time stands still.
	select {
	case <-got:
		t.Fatal("delivery before virtual latency elapsed")
	case <-time.After(30 * time.Millisecond):
	}
	tl.Advance(60 * time.Millisecond)
	select {
	case b := <-got:
		if b != 'x' {
			t.Fatalf("got %q", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delivery never arrived after Advance")
	}
}

func TestSimnetScriptedKillKeepsPrefix(t *testing.T) {
	n, _ := newTestNet(t, 3)
	// Kill the 3rd op (the second write) of cli's first connection,
	// delivering 2 bytes of it.
	n.InjectFault(Fault{Dialer: "cli", Op: "write", StartOp: 3, Count: 1, Mode: Kill, KeepBytes: 2})
	lis, _ := n.Listen("a:1")
	cli, err := n.Dialer("cli")(context.Background(), "a:1")
	if err != nil {
		t.Fatal(err)
	}
	srv := accept(t, lis)

	if _, err := cli.Write([]byte("ok")); err != nil { // op 2: delivered
		t.Fatal(err)
	}
	if _, err := cli.Write([]byte("doomed")); err != nil { // op 3: killed after 2 bytes
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	total := 0
	for total < 4 {
		k, err := srv.Read(buf[total:])
		if err != nil {
			t.Fatalf("read after %d bytes: %v", total, err)
		}
		total += k
	}
	if string(buf[:4]) != "okdo" {
		t.Fatalf("prefix %q, want %q", buf[:4], "okdo")
	}
	// The rest of the frame never arrives: reset.
	if _, err := srv.Read(buf); err == nil || !errors.Is(err, errReset) {
		t.Fatalf("after kill: %v, want reset", err)
	}
	if _, err := cli.Write([]byte("x")); err == nil || !errors.Is(err, errReset) {
		t.Fatalf("write after kill: %v, want reset", err)
	}
}

func TestSimnetDropWedgesUntilVirtualDeadline(t *testing.T) {
	n, tl := newTestNet(t, 4)
	n.InjectFault(Fault{Dialer: "cli", Op: "write", StartOp: 2, Count: -1, Mode: Drop})
	lis, _ := n.Listen("a:1")
	cli, err := n.Dialer("cli")(context.Background(), "a:1")
	if err != nil {
		t.Fatal(err)
	}
	srv := accept(t, lis)

	if _, err := cli.Write([]byte("vanishes")); err != nil {
		t.Fatal(err) // black-holed writes still "succeed"
	}
	srv.SetReadDeadline(tl.Now().Add(time.Minute))
	done := make(chan error, 1)
	go func() {
		_, err := srv.Read(make([]byte, 8))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("read returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	tl.Advance(2 * time.Minute)
	select {
	case err := <-done:
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("wedged read: %v, want timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("virtual deadline never fired")
	}
}

func TestSimnetPartitionAndHeal(t *testing.T) {
	n, _ := newTestNet(t, 5)
	lis, _ := n.Listen("a:1")
	dial := n.Dialer("cli")
	cli, err := dial(context.Background(), "a:1")
	if err != nil {
		t.Fatal(err)
	}
	srv := accept(t, lis)

	n.Partition("a:1")
	if _, err := cli.Write([]byte("x")); err == nil {
		t.Fatal("write over a partition succeeded")
	}
	if _, err := srv.Read(make([]byte, 1)); err == nil || !errors.Is(err, errReset) {
		t.Fatalf("server read across partition: %v, want reset", err)
	}
	if _, err := dial(context.Background(), "a:1"); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial into partition: %v, want refused", err)
	}

	n.Heal("a:1")
	cli2, err := dial(context.Background(), "a:1")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	srv2 := accept(t, lis)
	if _, err := cli2.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := srv2.Read(buf); err != nil || buf[0] != 'y' {
		t.Fatalf("after heal: %q, %v", buf, err)
	}
}

// TestSimnetProfileDrawsReplay runs the same chaotic traffic twice under one
// seed and expects identical fault events — the per-connection plans must be
// pure functions of (seed, label, dial sequence).
func TestSimnetProfileDrawsReplay(t *testing.T) {
	run := func() []string {
		n, tl := newTestNet(t, 42)
		stop := tl.StartPump(100*time.Microsecond, 50*time.Millisecond)
		defer stop()
		trace := NewTrace()
		n.SetRecorder(trace.Add)
		n.SetProfile(Profile{KillProb: 0.3, DropProb: 0.2, RefuseProb: 0.2})
		lis, _ := n.Listen("a:1")
		go func() {
			for {
				c, err := lis.Accept()
				if err != nil {
					return
				}
				go func(c net.Conn) {
					buf := make([]byte, 8)
					for {
						k, err := c.Read(buf)
						if err != nil {
							return
						}
						if _, err := c.Write(buf[:k]); err != nil {
							return
						}
					}
				}(c)
			}
		}()
		for _, label := range []string{"u", "v"} {
			dial := n.Dialer(label)
			for i := 0; i < 8; i++ {
				c, err := dial(context.Background(), "a:1")
				if err != nil {
					continue
				}
				for j := 0; j < 4; j++ {
					if _, err := c.Write([]byte("hi")); err != nil {
						break
					}
					c.SetReadDeadline(n.Timeline().Now().Add(time.Second))
					if _, err := c.Read(buf8()); err != nil {
						break
					}
				}
				c.Close()
			}
		}
		lis.Close()
		return trace.Lines()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no fault events recorded; chaos profile had no effect")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

func buf8() []byte { return make([]byte, 8) }
