package client

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"immortaldb"
	"immortaldb/internal/server"
)

func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	db, err := immortaldb.Open(t.TempDir(), &immortaldb.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, cfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return srv, addr.String()
}

// The dial-retry-backoff and stale-idle-connection scenarios formerly here
// ran on wall-clock sleeps and real TCP rebinds; they now run on virtual
// time over the simulated network in client_sim_test.go
// (TestDialRetryBackoffSim, TestStaleIdleConnRetrySim).

func TestDialFailsAfterRetriesExhausted(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	if _, err := Open(addr, &Options{DialRetries: 2, RetryBackoff: time.Millisecond}); err == nil {
		t.Fatal("Open against nothing succeeded")
	}
}

func TestExecAfterClose(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	d, err := Open(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := d.Exec(context.Background(), "SELECT * FROM t"); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Exec after Close: %v, want ErrPoolClosed", err)
	}
}

// TestPoolCapBlocks: with one slot held by a pinned session, Exec must block
// until its context expires, then succeed once the session releases.
func TestPoolCapBlocks(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	d, err := Open(addr, &Options{MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	if _, err := d.Exec(ctx, "CREATE TABLE t (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	s, err := d.Session(ctx)
	if err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := d.Exec(short, "SELECT * FROM t"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Exec over cap: %v, want deadline exceeded", err)
	}
	s.Close()
	if _, err := d.Exec(ctx, "SELECT * FROM t"); err != nil {
		t.Fatalf("Exec after release: %v", err)
	}
}

// TestRemoteErrorKeepsConnection: a statement error is not a connection
// error — the same connection keeps serving.
func TestRemoteErrorKeepsConnection(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	d, err := Open(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	_, err = d.Exec(ctx, "SELEKT gibberish")
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want RemoteError", err)
	}
	if _, err := d.Exec(ctx, "CREATE TABLE t (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatalf("Exec after remote error: %v", err)
	}
	if got := srv.Stats().Accepted; got != 1 {
		t.Fatalf("accepted %d connections, want 1 (conn should be reused)", got)
	}
}

// TestTxCommitOverWire round-trips an explicit transaction.
func TestTxCommitOverWire(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	d, err := Open(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	if _, err := d.Exec(ctx, "CREATE IMMORTAL TABLE t (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	tx, err := d.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, "INSERT INTO t VALUES (1, 2)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := d.Exec(ctx, "SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1] != "2" {
		t.Fatalf("rows after commit: %v", res.Rows)
	}

	// Rollback path: the write vanishes.
	tx2, err := d.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Exec(ctx, "INSERT INTO t VALUES (9, 9)"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	res, err = d.Exec(ctx, "SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows after rollback: %v", res.Rows)
	}
}
