// Package client is the Go client for immortald: a database/sql-flavored
// connection pool over the wire protocol.
//
//	db, _ := client.Open("localhost:7707", nil)
//	defer db.Close()
//	res, _ := db.Exec(ctx, `SELECT * FROM accounts WHERE id = 1`)
//	tx, _ := db.Begin(ctx)
//	tx.Exec(ctx, `UPDATE accounts SET balance = 90 WHERE id = 1`)
//	tx.Commit(ctx)
//
// Statements outside Begin auto-commit on a pooled connection. A Tx (or a
// Session) pins one connection, because the server keeps transaction state
// per connection.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"immortaldb/internal/itime"
	"immortaldb/internal/sqlish"
	"immortaldb/internal/wire"
)

// Options tune the pool. The zero value (or nil) uses the defaults below.
type Options struct {
	// MaxConns caps pooled connections (default 8). Exec blocks — honoring
	// its context — when all are busy.
	MaxConns int
	// DialTimeout bounds one dial attempt (default 5s).
	DialTimeout time.Duration
	// DialRetries is how many times a failed dial — or a statement refused
	// with a retryable server condition — is retried with jittered
	// exponential backoff (default 3; total attempts = DialRetries+1).
	DialRetries int
	// RetryBackoff is the first retry's base delay; later retries double it
	// (capped at 2s) and add jitter so a fleet of clients does not retry in
	// lockstep (default 50ms).
	RetryBackoff time.Duration
	// RetryBudget caps the total wall-clock time one operation may spend
	// across its attempt and all retries, enforced as a context deadline
	// (default 10s; a tighter caller deadline wins). It bounds worst-case
	// latency no matter how the retry schedule plays out. Always real time:
	// it is the caller's patience, not the network's.
	RetryBudget time.Duration
	// Dialer overrides how connections are made (default: TCP to the pool
	// address). The simulation harness injects its in-memory network here.
	Dialer func(ctx context.Context, addr string) (net.Conn, error)
	// Timeline supplies the clock for connection deadlines and retry
	// backoff (default: the real clock). Under a virtual timeline, backoffs
	// and timeouts elapse in virtual time, so seeded scenarios replay the
	// same schedule wall-clock-fast.
	Timeline itime.Timeline
	// OpTimeout bounds one request/response round trip (default: none —
	// only the caller's context deadline applies). The tighter of it and
	// the context deadline wins. Measured on Timeline; it is what turns a
	// black-holed connection into a timely error in simulation.
	OpTimeout time.Duration
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.MaxConns <= 0 {
		out.MaxConns = 8
	}
	if out.DialTimeout <= 0 {
		out.DialTimeout = 5 * time.Second
	}
	if out.DialRetries < 0 {
		out.DialRetries = 0
	} else if out.DialRetries == 0 {
		out.DialRetries = 3
	}
	if out.RetryBackoff <= 0 {
		out.RetryBackoff = 50 * time.Millisecond
	}
	if out.RetryBudget <= 0 {
		out.RetryBudget = 10 * time.Second
	}
	if out.Timeline == nil {
		out.Timeline = itime.Real()
	}
	return out
}

// ErrPoolClosed reports use of a closed pool.
var ErrPoolClosed = errors.New("client: pool closed")

// RemoteError is a statement error reported by the server. The connection
// that carried it remains healthy and is returned to the pool. Code is the
// wire error code classifying the failure.
type RemoteError struct {
	Code byte
	Msg  string
	// Primary is the primary address a read-only replica advertised with a
	// CodeReadOnlyReplica refusal ("" when the replica does not know one).
	Primary string
	// RetryAfter is the backoff hint an overloaded server attached to a
	// CodeOverloaded shed (zero when it sent none): how long it expects to
	// stay busy. The pool honors it in place of exponential backoff.
	RetryAfter time.Duration
}

func (e *RemoteError) Error() string { return e.Msg }

// Degraded reports that the server's engine is read-only-degraded after an
// I/O failure: writes will keep failing until an operator restarts it, so
// the client never retries these.
func (e *RemoteError) Degraded() bool { return e.Code == wire.CodeDegraded }

// Retryable reports a transient server condition (a shutdown drain): the
// statement may succeed after a backoff or on another connection.
func (e *RemoteError) Retryable() bool { return e.Code == wire.CodeRetryable }

// ReadOnlyReplica reports that the server is a read replica: the statement
// was a write and must be redirected to the primary. Retrying on the same
// server will fail the same way.
func (e *RemoteError) ReadOnlyReplica() bool { return e.Code == wire.CodeReadOnlyReplica }

// BeyondHorizon reports that an AS OF read asked a replica for a timestamp
// beyond its replication horizon: retryable on the same replica once it
// catches up, or immediately against the primary.
func (e *RemoteError) BeyondHorizon() bool { return e.Code == wire.CodeBeyondHorizon }

// Overloaded reports that the server shed the request (admission gate) or
// refused the connection (cap): retryable after RetryAfter.
func (e *RemoteError) Overloaded() bool { return e.Code == wire.CodeOverloaded }

// DB is a pooled client to one immortald server.
type DB struct {
	opts Options
	tl   itime.Timeline

	// slots is a counting semaphore over connection capacity; holders may
	// take an idle connection or dial a fresh one.
	slots chan struct{}

	mu     sync.Mutex
	addr   string
	idle   []*wconn
	closed bool
	// gen increments on Repoint; connections from an older generation were
	// dialed at the previous address and are discarded instead of pooled.
	gen uint64
}

// Open validates the address by dialing (with retry) and returns a pool.
func Open(addr string, opts *Options) (*DB, error) {
	d := &DB{addr: addr, opts: opts.withDefaults()}
	d.tl = d.opts.Timeline
	d.slots = make(chan struct{}, d.opts.MaxConns)
	for i := 0; i < d.opts.MaxConns; i++ {
		d.slots <- struct{}{}
	}
	// The retry budget bounds the opening dial like any other operation, so
	// hinted overload retries cannot stall Open past the caller's patience.
	ctx, cancel := d.withRetryBudget(context.Background())
	defer cancel()
	c, err := d.dial(ctx)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.idle = append(d.idle, c)
	d.mu.Unlock()
	return d, nil
}

// dial connects, with retry, and shakes hands. Plain dial failures back off
// with jittered exponential delays; a handshake refused CodeOverloaded — the
// connection cap — waits out the server's retry-after hint instead, so a
// momentarily full server costs one hint's worth of patience per attempt
// rather than the whole escalating backoff schedule.
func (d *DB) dial(ctx context.Context) (*wconn, error) {
	var lastErr error
	for attempt := 0; attempt <= d.opts.DialRetries; attempt++ {
		if attempt > 0 {
			if err := d.tl.Sleep(ctx, retryDelay(lastErr, d.opts.RetryBackoff, attempt-1)); err != nil {
				return nil, err
			}
		}
		addr, gen := d.target()
		nc, err := d.dialConn(ctx, addr)
		if err != nil {
			lastErr = err
			continue
		}
		c := &wconn{nc: nc, br: bufio.NewReader(nc), tl: d.tl, opTimeout: d.opts.OpTimeout, gen: gen}
		if err := c.handshake(ctx, d.opts.DialTimeout); err != nil {
			nc.Close()
			lastErr = err
			continue
		}
		return c, nil
	}
	addr, _ := d.target()
	return nil, fmt.Errorf("client: dial %s: %w", addr, lastErr)
}

// target reads the pool's current address and generation.
func (d *DB) target() (string, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.addr, d.gen
}

// Repoint re-targets the pool at a new server address — typically the
// primary a replica advertised in a write refusal, or the survivor of a
// failover. Idle connections to the old server are dropped, and in-flight
// connections are discarded when released rather than pooled.
func (d *DB) Repoint(addr string) {
	d.mu.Lock()
	if d.closed || d.addr == addr {
		d.mu.Unlock()
		return
	}
	d.addr = addr
	d.gen++
	idle := d.idle
	d.idle = nil
	d.mu.Unlock()
	for _, c := range idle {
		c.nc.Close()
	}
}

// Addr returns the pool's current target address.
func (d *DB) Addr() string {
	addr, _ := d.target()
	return addr
}

// dialConn makes one raw connection via the configured dialer.
func (d *DB) dialConn(ctx context.Context, addr string) (net.Conn, error) {
	if d.opts.Dialer != nil {
		return d.opts.Dialer(ctx, addr)
	}
	return (&net.Dialer{Timeout: d.opts.DialTimeout}).DialContext(ctx, "tcp", addr)
}

// jitterBackoff is the delay before retry attempt (0-based): exponential,
// capped at 2s, with full jitter over the upper half so a fleet of clients
// kicked off a draining server does not retry in lockstep.
func jitterBackoff(base time.Duration, attempt int) time.Duration {
	d := base << attempt
	if maxDelay := 2 * time.Second; d > maxDelay || d <= 0 {
		d = 2 * time.Second
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// acquire takes a capacity slot and returns a connection: an idle one if
// available (fromIdle true), freshly dialed otherwise.
func (d *DB) acquire(ctx context.Context) (c *wconn, fromIdle bool, err error) {
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return nil, false, ErrPoolClosed
	}
	select {
	case <-d.slots:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.slots <- struct{}{}
		return nil, false, ErrPoolClosed
	}
	if n := len(d.idle); n > 0 {
		c := d.idle[n-1]
		d.idle = d.idle[:n-1]
		d.mu.Unlock()
		return c, true, nil
	}
	d.mu.Unlock()
	c, err = d.dial(ctx)
	if err != nil {
		d.slots <- struct{}{}
		return nil, false, err
	}
	return c, false, nil
}

// release returns a connection to the pool, discarding broken ones and ones
// dialed at a pre-Repoint address.
func (d *DB) release(c *wconn, healthy bool) {
	d.mu.Lock()
	if healthy && !d.closed && c.gen == d.gen {
		d.idle = append(d.idle, c)
		c = nil
	}
	d.mu.Unlock()
	if c != nil {
		c.nc.Close()
	}
	d.slots <- struct{}{}
}

// Exec runs one auto-commit statement on a pooled connection. When an
// idle-pooled connection turns out stale — the server closed it while it
// sat in the pool — Exec transparently retries once on a freshly dialed
// connection. (Like database/sql's bad-connection retry, this can in
// principle re-execute a statement the server received just before dying;
// callers needing exactly-once must make statements idempotent.)
func (d *DB) Exec(ctx context.Context, sql string) (*sqlish.Result, error) {
	ctx, cancel := d.withRetryBudget(ctx)
	defer cancel()
	c, fromIdle, err := d.acquire(ctx)
	if err != nil {
		return nil, err
	}
	res, err := c.exec(ctx, sql)
	if err != nil && fromIdle && c.broken && ctx.Err() == nil && !isRemote(err) {
		c.nc.Close()
		c2, derr := d.dial(ctx)
		if derr != nil {
			d.slots <- struct{}{}
			return nil, derr
		}
		c = c2
		res, err = c.exec(ctx, sql)
	}
	// Only errors the server tagged retryable — a drain in progress, or an
	// overload shed — are retried inside the retry budget: jittered
	// exponential backoff for drains, the server's retry-after hint for
	// sheds. Degraded and plain statement errors are terminal: retrying a
	// degraded server cannot succeed until an operator restarts it, and
	// hammering it with retries would only mask the page. When the retries
	// run out, the last typed error surfaces (*RemoteError, Overloaded for
	// sheds) so callers can tell backpressure from failure.
	for attempt := 0; err != nil && isRetryable(err) && attempt <= d.opts.DialRetries; attempt++ {
		if d.tl.Sleep(ctx, retryDelay(err, d.opts.RetryBackoff, attempt)) != nil {
			break
		}
		if c.broken {
			c.nc.Close()
			c2, derr := d.dial(ctx)
			if derr != nil {
				d.slots <- struct{}{}
				return nil, derr
			}
			c = c2
		}
		res, err = c.exec(ctx, sql)
	}
	// A write refused by a replica that advertised its primary is retried
	// exactly once there: the pool re-points (dropping idle connections to
	// the replica) and the statement re-runs on a fresh connection. One hop
	// only — if the "primary" also refuses, the refusal surfaces.
	if re := remoteErr(err); re != nil && re.ReadOnlyReplica() && re.Primary != "" && ctx.Err() == nil {
		d.Repoint(re.Primary)
		c.nc.Close()
		c.broken = true
		c2, derr := d.dial(ctx)
		if derr != nil {
			d.slots <- struct{}{}
			return nil, derr
		}
		c = c2
		res, err = c.exec(ctx, sql)
	}
	d.release(c, !c.broken)
	return res, err
}

func remoteErr(err error) *RemoteError {
	var re *RemoteError
	if errors.As(err, &re) {
		return re
	}
	return nil
}

func isRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

func isRetryable(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && (re.Retryable() || re.Overloaded())
}

// retryDelay picks the wait before one retry: the retry-after hint when the
// failure was an overload shed that carried one — the server knows how long
// it expects to stay busy — and jittered exponential backoff otherwise.
func retryDelay(err error, base time.Duration, attempt int) time.Duration {
	if re := remoteErr(err); re != nil && re.Overloaded() && re.RetryAfter > 0 {
		return re.RetryAfter
	}
	return jitterBackoff(base, attempt)
}

// withRetryBudget caps the total time an operation and its retries may take.
// A caller deadline tighter than the budget wins.
func (d *DB) withRetryBudget(ctx context.Context) (context.Context, context.CancelFunc) {
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d.opts.RetryBudget {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d.opts.RetryBudget)
}

// Ping checks server liveness over a pooled connection.
func (d *DB) Ping(ctx context.Context) error {
	c, _, err := d.acquire(ctx)
	if err != nil {
		return err
	}
	err = c.ping(ctx)
	d.release(c, !c.broken)
	return err
}

// Close closes idle connections and fails future calls. In-flight calls
// finish; their connections are discarded on release.
func (d *DB) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	idle := d.idle
	d.idle = nil
	d.mu.Unlock()
	for _, c := range idle {
		c.nc.Close()
	}
	return nil
}

// Session pins one connection for free-form statement sequences (the REPL's
// remote mode). The caller must Close it to unpin the connection.
type Session struct {
	d    *DB
	c    *wconn
	done bool
}

// Session acquires a pinned connection.
func (d *DB) Session(ctx context.Context) (*Session, error) {
	c, _, err := d.acquire(ctx)
	if err != nil {
		return nil, err
	}
	return &Session{d: d, c: c}, nil
}

// Exec runs one statement on the pinned connection.
func (s *Session) Exec(ctx context.Context, sql string) (*sqlish.Result, error) {
	if s.done {
		return nil, ErrPoolClosed
	}
	return s.c.exec(ctx, sql)
}

// Close returns the pinned connection to the pool. An open server-side
// transaction is left to the server to roll back when the connection is
// reused — so Close discards the connection if a transaction may be open.
func (s *Session) Close() error {
	if s.done {
		return nil
	}
	s.done = true
	// The pool cannot know the server-side transaction state of a pinned
	// session; recycling a connection with an open transaction would leak
	// it into the next Exec. Discarding is always safe: the server rolls
	// back on disconnect.
	s.d.release(s.c, false)
	return nil
}

// Tx is an explicit transaction pinned to one connection.
type Tx struct {
	s *Session
}

// Begin opens a serializable transaction.
func (d *DB) Begin(ctx context.Context) (*Tx, error) {
	return d.begin(ctx, "BEGIN TRAN")
}

// BeginSnapshot opens a snapshot-isolation transaction.
func (d *DB) BeginSnapshot(ctx context.Context) (*Tx, error) {
	return d.begin(ctx, "BEGIN TRAN ISOLATION SNAPSHOT")
}

// BeginAsOf opens a read-only transaction over the database as of the given
// time literal (e.g. "2004-08-12 10:15:20").
func (d *DB) BeginAsOf(ctx context.Context, at string) (*Tx, error) {
	return d.begin(ctx, fmt.Sprintf("BEGIN TRAN AS OF %q", at))
}

func (d *DB) begin(ctx context.Context, stmt string) (*Tx, error) {
	s, err := d.Session(ctx)
	if err != nil {
		return nil, err
	}
	if _, err := s.Exec(ctx, stmt); err != nil {
		s.Close()
		return nil, err
	}
	return &Tx{s: s}, nil
}

// Exec runs one statement inside the transaction.
func (t *Tx) Exec(ctx context.Context, sql string) (*sqlish.Result, error) {
	return t.s.Exec(ctx, sql)
}

// Commit commits the transaction and unpins its connection. A nil error
// means the server acknowledged a durable commit.
func (t *Tx) Commit(ctx context.Context) error {
	_, err := t.s.Exec(ctx, "COMMIT")
	t.end(err == nil)
	return err
}

// Rollback aborts the transaction and unpins its connection.
func (t *Tx) Rollback(ctx context.Context) error {
	_, err := t.s.Exec(ctx, "ROLLBACK")
	t.end(err == nil)
	return err
}

// end releases the pinned connection. After a clean COMMIT/ROLLBACK the
// connection provably has no transaction state, so it can be pooled.
func (t *Tx) end(clean bool) {
	if t.s.done {
		return
	}
	t.s.done = true
	t.s.d.release(t.s.c, clean && !t.s.c.broken)
}

// wconn is one wire connection.
type wconn struct {
	nc        net.Conn
	br        *bufio.Reader
	tl        itime.Timeline
	opTimeout time.Duration
	// gen is the pool generation the connection was dialed under; see
	// DB.Repoint.
	gen uint64
	// broken marks the connection unusable (I/O error, protocol error).
	broken bool
}

func (c *wconn) handshake(ctx context.Context, timeout time.Duration) error {
	c.applyDeadline(ctx, timeout)
	if err := wire.WriteFrame(c.nc, wire.MsgHello, wire.HelloPayload()); err != nil {
		return err
	}
	typ, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		return err
	}
	c.nc.SetDeadline(time.Time{})
	switch typ {
	case wire.MsgHelloOK:
		return nil
	case wire.MsgError:
		code, msg := wire.ParseError(payload)
		return newRemoteError(code, msg)
	default:
		return wire.ErrBadHandshake
	}
}

// newRemoteError builds a RemoteError, splitting out the redirect address a
// read-only replica embeds in its refusal and the retry-after hint an
// overloaded server embeds in its shed.
func newRemoteError(code byte, msg string) *RemoteError {
	re := &RemoteError{Code: code, Msg: msg}
	switch code {
	case wire.CodeReadOnlyReplica:
		re.Msg, re.Primary = wire.ParseRedirect(msg)
	case wire.CodeOverloaded:
		re.Msg, re.RetryAfter = wire.ParseOverload(msg)
	}
	return re
}

// applyDeadline sets the connection deadline to the tighter of the context
// deadline and opTimeout (zero opTimeout: context only; neither: none). A
// context deadline (real time) is translated onto the connection's timeline
// by its remaining duration, so it works unchanged over a virtual-time
// network.
func (c *wconn) applyDeadline(ctx context.Context, opTimeout time.Duration) {
	var dl time.Time
	if d, ok := ctx.Deadline(); ok {
		dl = c.tl.Now().Add(time.Until(d))
	}
	if opTimeout > 0 {
		if op := c.tl.Now().Add(opTimeout); dl.IsZero() || op.Before(dl) {
			dl = op
		}
	}
	c.nc.SetDeadline(dl) // the zero time clears the deadline
}

// exec runs one round trip. Context deadlines map to connection deadlines;
// a canceled/expired context surfaces as a timeout and marks the connection
// broken (the response would otherwise arrive during someone else's turn).
func (c *wconn) exec(ctx context.Context, sql string) (*sqlish.Result, error) {
	payload, err := c.roundTrip(ctx, wire.MsgExec, []byte(sql), wire.MsgResult)
	if err != nil {
		return nil, err
	}
	return sqlish.DecodeResult(payload)
}

func (c *wconn) ping(ctx context.Context) error {
	_, err := c.roundTrip(ctx, wire.MsgPing, nil, wire.MsgPong)
	return err
}

func (c *wconn) roundTrip(ctx context.Context, reqType byte, payload []byte, wantType byte) ([]byte, error) {
	if c.broken {
		return nil, errors.New("client: connection is broken")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.applyDeadline(ctx, c.opTimeout)
	if err := wire.WriteFrame(c.nc, reqType, payload); err != nil {
		c.broken = true
		return nil, err
	}
	typ, resp, err := wire.ReadFrame(c.br)
	if err != nil {
		c.broken = true
		return nil, err
	}
	if typ == wire.MsgError {
		code, msg := wire.ParseError(resp)
		return nil, newRemoteError(code, msg)
	}
	if typ != wantType {
		c.broken = true
		return nil, fmt.Errorf("client: unexpected response type %#x", typ)
	}
	return resp, nil
}
