// Overload and redirect-race retry policy, on virtual time: CodeOverloaded
// sheds must be retried on the server's retry-after hint (not the
// exponential backoff schedule), connection-cap refusals must be retryable
// rather than budget-burning dead ends, and a redirect chain racing a second
// promotion must converge without double-applying a commit or hanging.
package client_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"immortaldb/internal/client"
	"immortaldb/internal/itime"
	"immortaldb/internal/server"
	"immortaldb/internal/sim"
	"immortaldb/internal/wire"
)

// TestOverloadedResponseHintBackoff: a CodeOverloaded shed is retried, and
// each retry waits the server's hint — here 10ms — instead of the escalating
// exponential schedule (1s base), so a full retry round costs tens of
// milliseconds of budget, not seconds.
func TestOverloadedResponseHintBackoff(t *testing.T) {
	tl := itime.NewSimTimeline(time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC))
	stop := tl.StartPump(100*time.Microsecond, 50*time.Millisecond)
	defer stop()
	n := sim.NewNet(tl, 1)
	stub := startStubServer(t, n, "stub:1", wire.CodeOverloaded)
	stub.msg = wire.OverloadMsg("server busy", 10*time.Millisecond)

	const dialRetries = 3
	d, err := client.Open("stub:1", &client.Options{
		MaxConns: 1, DialRetries: dialRetries, RetryBackoff: time.Second,
		Dialer: n.Dialer("cli"), Timeline: tl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	startV := tl.Now()
	_, err = d.Exec(context.Background(), "INSERT INTO t VALUES (1)")
	elapsedV := tl.Now().Sub(startV)

	var re *client.RemoteError
	if !errors.As(err, &re) || !re.Overloaded() {
		t.Fatalf("got %v, want overloaded RemoteError", err)
	}
	if re.RetryAfter != 10*time.Millisecond {
		t.Fatalf("RetryAfter %v, want 10ms", re.RetryAfter)
	}
	// Initial attempt plus dialRetries+1 retries — sheds are retried like
	// any other transient condition.
	want := dialRetries + 2
	if got := drain(stub.execs); got != want {
		t.Fatalf("server saw %d exec frames, want %d", got, want)
	}
	// Four hinted waits ≈ 40ms of virtual time. Had the retries used the
	// 1s-base exponential schedule instead, the same round would have slept
	// well over 3s.
	if elapsedV >= time.Second {
		t.Fatalf("retry round consumed %v of virtual time; hint ignored?", elapsedV)
	}
}

// TestConnCapRefusalRetryableWithHint is the regression test for the
// connection-cap dead end: a refusal over the cap must come back as a
// retryable CodeOverloaded with a retry-after hint — a typed error the
// caller can classify, reached on the cheap hinted schedule rather than
// after burning the whole exponential backoff budget — and a later retry
// must get in once a slot frees up.
func TestConnCapRefusalRetryableWithHint(t *testing.T) {
	n, tl, srv, addr := simCluster(t, server.Config{MaxConns: 1})
	stop := tl.StartPump(100*time.Microsecond, 50*time.Millisecond)
	defer stop()

	dA, err := client.Open(addr, &client.Options{
		MaxConns: 1, Dialer: n.Dialer("cliA"), Timeline: tl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dA.Close()
	sessA, err := dA.Session(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// The cap is full: a second client's dial is refused every attempt and
	// must surface the typed overload — after hinted waits (100ms each),
	// not the 1s-base exponential schedule.
	startV := tl.Now()
	_, err = client.Open(addr, &client.Options{
		MaxConns: 1, DialRetries: 2, RetryBackoff: time.Second,
		Dialer: n.Dialer("cliB"), Timeline: tl,
	})
	elapsedV := tl.Now().Sub(startV)
	var re *client.RemoteError
	if !errors.As(err, &re) || !re.Overloaded() {
		t.Fatalf("refused dial: got %v, want overloaded RemoteError", err)
	}
	if re.RetryAfter <= 0 {
		t.Fatal("cap refusal carried no retry-after hint")
	}
	if elapsedV >= time.Second {
		t.Fatalf("refused dial consumed %v of virtual time; hint ignored?", elapsedV)
	}
	if got := srv.Stats().Refused; got == 0 {
		t.Fatal("server refused counter did not move")
	}

	// Free the slot; a retrying client must now get in on its own.
	sessA.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().ActiveConns != 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never reaped the released connection")
		}
		time.Sleep(time.Millisecond)
	}
	dB, err := client.Open(addr, &client.Options{
		MaxConns: 1, DialRetries: 10, Dialer: n.Dialer("cliB2"), Timeline: tl,
	})
	if err != nil {
		t.Fatalf("open after slot freed: %v", err)
	}
	defer dB.Close()
	if err := dB.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRedirectRetryRacesSecondPromotion: the client follows a replica's
// redirect, but the redirect target was itself deposed before the retry
// lands (a second promotion won). The first Exec must surface a typed
// replica error naming the newer primary — one hop per call, no chasing —
// and the caller's retry must then land the commit on the real primary
// exactly once.
func TestRedirectRetryRacesSecondPromotion(t *testing.T) {
	// Real server C is the twice-promoted primary; stubs A and B are the
	// deposed hops. A redirects to B, B redirects to C.
	n, tl, srv, primaryAddr := simCluster(t, server.Config{})
	stop := tl.StartPump(100*time.Microsecond, 50*time.Millisecond)
	defer stop()
	stubB := startStubServer(t, n, "stubB:1", wire.CodeReadOnlyReplica)
	stubB.msg = wire.RedirectMsg("server: read-only replica", primaryAddr)
	stubA := startStubServer(t, n, "stubA:1", wire.CodeReadOnlyReplica)
	stubA.msg = wire.RedirectMsg("server: read-only replica", "stubB:1")

	d, err := client.Open("stubA:1", &client.Options{
		MaxConns: 1, DialRetries: 2, RetryBackoff: time.Millisecond,
		Dialer: n.Dialer("cli"), Timeline: tl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	if _, err := d.Exec(ctx, "CREATE TABLE t (k INT PRIMARY KEY, v INT)"); err == nil {
		t.Fatal("first exec: want a replica refusal after one hop, got success")
	} else {
		var re *client.RemoteError
		if !errors.As(err, &re) || !re.ReadOnlyReplica() {
			t.Fatalf("first exec: got %v, want read-only-replica RemoteError", err)
		}
		// The error names the newer primary, so the caller (or the next
		// call) can converge instead of hanging.
		if re.Primary != primaryAddr {
			t.Fatalf("first exec advertised primary %q, want %q", re.Primary, primaryAddr)
		}
	}
	if d.Addr() != "stubB:1" {
		t.Fatalf("pool points at %q after one hop, want stubB:1", d.Addr())
	}

	// The caller retries: B still redirects, and this call's one hop lands
	// on the true primary.
	if _, err := d.Exec(ctx, "CREATE TABLE t (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatalf("second exec: %v", err)
	}
	if _, err := d.Exec(ctx, "INSERT INTO t VALUES (1, 10)"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	// Exactly-once: each deposed hop saw exactly one frame per Exec that
	// crossed it, and the committed row exists exactly once on the primary.
	if got := drain(stubA.execs); got != 1 {
		t.Fatalf("stub A saw %d exec frames, want 1", got)
	}
	if got := drain(stubB.execs); got != 2 {
		t.Fatalf("stub B saw %d exec frames, want 2", got)
	}
	res, err := d.Exec(ctx, "SELECT k, v FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("committed rows: %d, want exactly 1", len(res.Rows))
	}
	if got := srv.Stats().Requests; got != 3 {
		t.Fatalf("primary served %d statements, want 3 (CREATE, INSERT, SELECT)", got)
	}
}

// TestRedirectNoPrimaryReachable: every hop is a deposed replica and the
// last one knows no primary. The client must surface a typed error promptly
// — never hang, never loop.
func TestRedirectNoPrimaryReachable(t *testing.T) {
	tl := itime.NewSimTimeline(time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC))
	stop := tl.StartPump(100*time.Microsecond, 50*time.Millisecond)
	defer stop()
	n := sim.NewNet(tl, 1)
	stubB := startStubServer(t, n, "stubB:1", wire.CodeReadOnlyReplica)
	stubB.msg = "server: read-only replica" // deposed, knows no primary
	stubA := startStubServer(t, n, "stubA:1", wire.CodeReadOnlyReplica)
	stubA.msg = wire.RedirectMsg("server: read-only replica", "stubB:1")

	d, err := client.Open("stubA:1", &client.Options{
		MaxConns: 1, DialRetries: 2, RetryBackoff: time.Millisecond,
		Dialer: n.Dialer("cli"), Timeline: tl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	start := time.Now()
	_, err = d.Exec(context.Background(), "INSERT INTO t VALUES (1)")
	var re *client.RemoteError
	if !errors.As(err, &re) || !re.ReadOnlyReplica() {
		t.Fatalf("got %v, want read-only-replica RemoteError", err)
	}
	if re.Primary != "" {
		t.Fatalf("advertised primary %q, want none", re.Primary)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("no-primary refusal took %v; did it hang or loop?", took)
	}
}
