// Simulation-backed client tests: the flaky-prone wall-clock cases from
// client_test.go converted to virtual time over the in-memory network, plus
// retry-policy coverage against scripted server responses. External test
// package, because internal/sim imports internal/client.
package client_test

import (
	"bufio"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"immortaldb"
	"immortaldb/internal/client"
	"immortaldb/internal/itime"
	"immortaldb/internal/server"
	"immortaldb/internal/sim"
	"immortaldb/internal/wire"
)

// simCluster boots one real server over the simulated network on a virtual
// timeline.
func simCluster(t *testing.T, cfg server.Config) (*sim.Net, *itime.SimTimeline, *server.Server, string) {
	t.Helper()
	tl := itime.NewSimTimeline(time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC))
	n := sim.NewNet(tl, 1)
	db, err := immortaldb.Open(t.TempDir(), &immortaldb.Options{NoSync: true, Clock: tl})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Clock = tl
	srv := server.New(db, cfg)
	const addr = "srv:7707"
	lis, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ListenOn(lis); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return n, tl, srv, addr
}

// TestStaleIdleConnRetrySim is the virtual-time version of the stale-pooled-
// connection scenario: the server's idle timeout reaps the pooled connection
// at a deterministic virtual instant — no wall-clock sleep race — and the
// next Exec must transparently retry on a fresh dial.
func TestStaleIdleConnRetrySim(t *testing.T) {
	n, tl, srv, addr := simCluster(t, server.Config{IdleTimeout: time.Minute})
	d, err := client.Open(addr, &client.Options{
		MaxConns: 1, Dialer: n.Dialer("cli"), Timeline: tl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	if _, err := d.Exec(ctx, "CREATE TABLE t (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}

	// Push virtual time past the idle timeout and wait for the server to
	// reap the pooled connection.
	tl.Advance(5 * time.Minute)
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().ActiveConns != 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never reaped the idle connection")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := d.Exec(ctx, "SELECT * FROM t"); err != nil {
		t.Fatalf("Exec on stale pooled conn: %v", err)
	}
	if got := srv.Stats().Accepted; got != 2 {
		t.Fatalf("accepted %d connections, want 2 (one reaped, one redialed)", got)
	}
}

// TestDialRetryBackoffSim: the server appears only after the client's first
// dial attempts were refused; the backoff runs in virtual time, so the test
// involves no wall-clock tuning.
func TestDialRetryBackoffSim(t *testing.T) {
	tl := itime.NewSimTimeline(time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC))
	stop := tl.StartPump(100*time.Microsecond, 50*time.Millisecond)
	defer stop()
	n := sim.NewNet(tl, 1)
	const addr = "srv:7707"

	type opened struct {
		d   *client.DB
		err error
	}
	ch := make(chan opened, 1)
	go func() {
		d, err := client.Open(addr, &client.Options{
			DialRetries: 100, RetryBackoff: 10 * time.Millisecond,
			Dialer: n.Dialer("cli"), Timeline: tl,
		})
		ch <- opened{d, err}
	}()

	// Let several (virtual-time) attempts fail before the listener exists.
	time.Sleep(20 * time.Millisecond)
	db, err := immortaldb.Open(t.TempDir(), &immortaldb.Options{NoSync: true, Clock: tl})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := server.New(db, server.Config{Clock: tl})
	lis, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ListenOn(lis); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	got := <-ch
	if got.err != nil {
		t.Fatalf("Open with retry: %v", got.err)
	}
	defer got.d.Close()
	if err := got.d.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// stubServer speaks just enough wire protocol to answer every Exec with a
// scripted error frame, counting what it sees. Set msg before any client
// dials to script the error string (redirects, overload hints); it defaults
// to "stub says no".
type stubServer struct {
	lis      net.Listener
	code     byte
	msg      string
	accepted chan struct{}
	execs    chan struct{}
}

func startStubServer(t *testing.T, n *sim.Net, addr string, code byte) *stubServer {
	t.Helper()
	lis, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	s := &stubServer{lis: lis, code: code, accepted: make(chan struct{}, 64), execs: make(chan struct{}, 64)}
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			s.accepted <- struct{}{}
			go s.serve(nc)
		}
	}()
	t.Cleanup(func() { lis.Close() })
	return s
}

func (s *stubServer) serve(nc net.Conn) {
	defer nc.Close()
	br := bufio.NewReader(nc)
	typ, payload, err := wire.ReadFrame(br)
	if err != nil || typ != wire.MsgHello {
		return
	}
	if _, err := wire.CheckHello(payload); err != nil {
		return
	}
	if err := wire.WriteFrame(nc, wire.MsgHelloOK, []byte{wire.Version}); err != nil {
		return
	}
	for {
		typ, _, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		switch typ {
		case wire.MsgExec:
			s.execs <- struct{}{}
			msg := s.msg
			if msg == "" {
				msg = "stub says no"
			}
			if err := wire.WriteFrame(nc, wire.MsgError, wire.ErrorPayload(s.code, msg)); err != nil {
				return
			}
		case wire.MsgPing:
			if err := wire.WriteFrame(nc, wire.MsgPong, nil); err != nil {
				return
			}
		default:
			return
		}
	}
}

func drain(ch chan struct{}) int {
	n := 0
	for {
		select {
		case <-ch:
			n++
		default:
			return n
		}
	}
}

// TestDegradedResponseNotRetried: a CodeDegraded response is terminal — the
// client must not retry it (retrying a degraded engine cannot succeed and
// would mask the operator page), must not burn its retry budget, and must
// keep the connection pooled (a degraded reply is a healthy connection).
func TestDegradedResponseNotRetried(t *testing.T) {
	tl := itime.NewSimTimeline(time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC))
	stop := tl.StartPump(100*time.Microsecond, 50*time.Millisecond)
	defer stop()
	n := sim.NewNet(tl, 1)
	stub := startStubServer(t, n, "stub:1", wire.CodeDegraded)

	d, err := client.Open("stub:1", &client.Options{
		MaxConns: 1, DialRetries: 3, RetryBackoff: 10 * time.Millisecond,
		Dialer: n.Dialer("cli"), Timeline: tl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	start := time.Now()
	_, err = d.Exec(context.Background(), "INSERT INTO t VALUES (1)")
	var re *client.RemoteError
	if !errors.As(err, &re) || !re.Degraded() {
		t.Fatalf("got %v, want degraded RemoteError", err)
	}
	// No retry: exactly one Exec frame reached the server, and the call
	// returned without sitting in backoff (the budget is untouched; 5s is
	// far below the smallest backoff-retry schedule that could stall it).
	if got := drain(stub.execs); got != 1 {
		t.Fatalf("server saw %d exec frames, want 1 (no retry of degraded)", got)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("degraded response took %v; did it sit in a retry loop?", took)
	}

	// The connection carried an orderly error frame: it must stay pooled.
	if _, err := d.Exec(context.Background(), "SELECT 1"); !errors.As(err, &re) {
		t.Fatalf("second exec: %v", err)
	}
	if got := drain(stub.accepted); got != 1 {
		t.Fatalf("server accepted %d connections, want 1 (degraded conn must stay pooled)", got)
	}
}

// TestRetryableResponseRetriesWithBudget: the contrast case — CodeRetryable
// is retried with backoff until the attempt budget is exhausted.
func TestRetryableResponseRetriesWithBudget(t *testing.T) {
	tl := itime.NewSimTimeline(time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC))
	stop := tl.StartPump(100*time.Microsecond, 50*time.Millisecond)
	defer stop()
	n := sim.NewNet(tl, 1)
	stub := startStubServer(t, n, "stub:1", wire.CodeRetryable)

	const dialRetries = 2
	d, err := client.Open("stub:1", &client.Options{
		MaxConns: 1, DialRetries: dialRetries, RetryBackoff: 5 * time.Millisecond,
		Dialer: n.Dialer("cli"), Timeline: tl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	_, err = d.Exec(context.Background(), "INSERT INTO t VALUES (1)")
	var re *client.RemoteError
	if !errors.As(err, &re) || !re.Retryable() {
		t.Fatalf("got %v, want retryable RemoteError", err)
	}
	// Initial attempt plus dialRetries+1 retries.
	want := dialRetries + 2
	if got := drain(stub.execs); got != want {
		t.Fatalf("server saw %d exec frames, want %d", got, want)
	}
}
