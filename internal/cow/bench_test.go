package cow

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func benchTree(b *testing.B) *Tree {
	b.Helper()
	dir, err := os.MkdirTemp("", "cowbench")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	tr, err := Open(filepath.Join(dir, "t.cow"), Options{ValSize: 12, NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { tr.Close() })
	return tr
}

// BenchmarkPutAscending is the PTT's hot path: one ascending-TID insert per
// transaction commit.
func BenchmarkPutAscending(b *testing.B) {
	tr := benchTree(b)
	val := make([]byte, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(uint64(i+1), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPutCommitEvery mirrors PTTSyncEveryCommit: a copy-on-write commit
// per insert.
func BenchmarkPutCommitEvery(b *testing.B) {
	tr := benchTree(b)
	val := make([]byte, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(uint64(i+1), val); err != nil {
			b.Fatal(err)
		}
		if err := tr.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetHot(b *testing.B) {
	tr := benchTree(b)
	val := make([]byte, 12)
	for i := 0; i < 10000; i++ {
		tr.Put(uint64(i+1), val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Get(uint64(i%10000 + 1)); err != nil {
			b.Fatal(fmt.Errorf("get %d: %w", i%10000+1, err))
		}
	}
}
