// Package cow implements a small BoltDB-style copy-on-write B+tree keyed by
// uint64 with fixed-size values, in its own file with dual meta pages and an
// atomic root flip per commit.
//
// It is the substrate for Immortal DB's Persistent Timestamp Table (Section
// 2.2): "a B-tree based table ordered by TID, which permits fast access
// based on TID ... since TIDs are assigned in ascending order, all recent
// table entries are at the tail of the table." Copy-on-write gives the PTT
// crash consistency independent of the main WAL, which matters because PTT
// garbage-collection deletes are deliberately not logged — a lost delete
// merely strands an entry, exactly the failure mode the paper accepts.
package cow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"immortaldb/internal/storage/vfs"
)

// Errors returned by the tree.
var (
	ErrNotFound = errors.New("cow: key not found")
	ErrBadFile  = errors.New("cow: bad or foreign file")
	ErrClosed   = errors.New("cow: tree closed")
	ErrValSize  = errors.New("cow: wrong value size")
)

const (
	cowMagic      = 0x494d4d434f570a01 // "IMMCOW\n"
	cowVersion    = 1
	defaultPageSz = 4096
	minPageSz     = 128
	// node page header: crc(4) type(1) n(2) pad(1)
	nodeHdrLen = 8
	// meta payload: magic(8) version(4) pageSize(4) valSize(4) txid(8)
	// root(8) numPages(8) count(8) freeLen(4) + free IDs
	metaFixedLen = 8 + 4 + 4 + 4 + 8 + 8 + 8 + 8 + 4
)

const (
	nodeLeaf   = 1
	nodeBranch = 2
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configure Open.
type Options struct {
	// PageSize for a new file (default 4096). Existing files keep theirs.
	PageSize int
	// ValSize is the fixed value size for a new file; required when
	// creating. Existing files keep theirs.
	ValSize int
	// NoSync skips fsync on Commit (benchmarks).
	NoSync bool
	// FS is the filesystem to open the file on; nil means the real one.
	FS vfs.FS
}

// Tree is a copy-on-write B+tree. All methods are safe for concurrent use,
// serialized internally. Mutations are buffered in memory until Commit makes
// them durable atomically; a crash reverts to the last committed state.
type Tree struct {
	mu       sync.Mutex
	f        vfs.File
	pageSize int
	valSize  int
	noSync   bool

	txid     uint64
	root     *node  // in-memory root (may mix clean and dirty nodes)
	rootPage uint64 // on-disk root of the committed state (0 = empty tree)
	numPages uint64 // file high-water mark in pages (incl. 2 meta pages)
	count    uint64 // committed + uncommitted entry count

	freeNow  []uint64 // reusable page IDs
	freedTx  []uint64 // freed this txn; reusable after next commit
	allocTx  []uint64 // allocated this txn (from freeNow or extension)
	dirty    bool
	closed   bool
	commits  uint64
	pagesOut uint64
}

type node struct {
	leaf     bool
	dirty    bool
	page     uint64 // on-disk page if clean (0 for never-written dirty nodes)
	keys     []uint64
	vals     [][]byte // leaf only
	children []uint64 // branch only: child page IDs (clean children)
	kids     []*node  // branch only: loaded child nodes (nil = not loaded)
}

// Open opens or creates the tree file at path.
func Open(path string, opts Options) (*Tree, error) {
	ps := opts.PageSize
	if ps == 0 {
		ps = defaultPageSz
	}
	if ps < minPageSz || ps&(ps-1) != 0 {
		return nil, fmt.Errorf("cow: page size %d must be a power of two >= %d", ps, minPageSz)
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS()
	}
	f, err := fsys.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("cow: open %s: %w", path, err)
	}
	t := &Tree{f: f, noSync: opts.NoSync}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	if size == 0 {
		if opts.ValSize <= 0 {
			f.Close()
			return nil, fmt.Errorf("cow: ValSize required to create %s", path)
		}
		t.pageSize = ps
		t.valSize = opts.ValSize
		t.numPages = 2
		t.txid = 1
		if err := t.writeMeta(); err != nil {
			f.Close()
			return nil, err
		}
		if !t.noSync {
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, err
			}
		}
		return t, nil
	}
	if err := t.loadMeta(); err != nil {
		f.Close()
		return nil, err
	}
	if opts.ValSize != 0 && opts.ValSize != t.valSize {
		f.Close()
		return nil, fmt.Errorf("%w: value size %d, file uses %d", ErrBadFile, opts.ValSize, t.valSize)
	}
	return t, nil
}

func (t *Tree) metaBytes() []byte {
	b := make([]byte, t.pageSize)
	off := 4 // crc first
	binary.BigEndian.PutUint64(b[off:], cowMagic)
	binary.BigEndian.PutUint32(b[off+8:], cowVersion)
	binary.BigEndian.PutUint32(b[off+12:], uint32(t.pageSize))
	binary.BigEndian.PutUint32(b[off+16:], uint32(t.valSize))
	binary.BigEndian.PutUint64(b[off+20:], t.txid)
	binary.BigEndian.PutUint64(b[off+28:], t.rootPage)
	binary.BigEndian.PutUint64(b[off+36:], t.numPages)
	binary.BigEndian.PutUint64(b[off+44:], t.count)
	free := t.freeNow
	maxFree := (t.pageSize - 4 - metaFixedLen) / 8
	if len(free) > maxFree {
		free = free[:maxFree] // overflow leaks pages; safe
	}
	binary.BigEndian.PutUint32(b[off+52:], uint32(len(free)))
	p := off + 56
	for _, id := range free {
		binary.BigEndian.PutUint64(b[p:], id)
		p += 8
	}
	binary.BigEndian.PutUint32(b[0:], crc32.Checksum(b[4:], crcTable))
	return b
}

// writeMeta writes the meta for the current txid into its alternating slot.
func (t *Tree) writeMeta() error {
	b := t.metaBytes()
	slot := int64(t.txid%2) * int64(t.pageSize)
	if _, err := t.f.WriteAt(b, slot); err != nil {
		return fmt.Errorf("cow: write meta: %w", err)
	}
	return nil
}

type metaInfo struct {
	txid, root, numPages, count uint64
	pageSize, valSize           int
	free                        []uint64
}

func parseMeta(b []byte) (*metaInfo, bool) {
	if len(b) < 4+metaFixedLen {
		return nil, false
	}
	if binary.BigEndian.Uint32(b[0:]) != crc32.Checksum(b[4:], crcTable) {
		return nil, false
	}
	off := 4
	if binary.BigEndian.Uint64(b[off:]) != cowMagic {
		return nil, false
	}
	if binary.BigEndian.Uint32(b[off+8:]) != cowVersion {
		return nil, false
	}
	m := &metaInfo{
		pageSize: int(binary.BigEndian.Uint32(b[off+12:])),
		valSize:  int(binary.BigEndian.Uint32(b[off+16:])),
		txid:     binary.BigEndian.Uint64(b[off+20:]),
		root:     binary.BigEndian.Uint64(b[off+28:]),
		numPages: binary.BigEndian.Uint64(b[off+36:]),
		count:    binary.BigEndian.Uint64(b[off+44:]),
	}
	n := int(binary.BigEndian.Uint32(b[off+52:]))
	p := off + 56
	if p+8*n > len(b) {
		return nil, false
	}
	m.free = make([]uint64, n)
	for i := 0; i < n; i++ {
		m.free[i] = binary.BigEndian.Uint64(b[p:])
		p += 8
	}
	return m, true
}

func (t *Tree) loadMeta() error {
	// The page size is inside the meta; probe with a generous buffer. The
	// two meta slots live at offsets 0 and pageSize.
	probe := make([]byte, 128*1024)
	n, _ := t.f.ReadAt(probe, 0)
	probe = probe[:n]
	if len(probe) < 4+metaFixedLen {
		return fmt.Errorf("%w: too small", ErrBadFile)
	}
	// tryAt parses a meta slot at off, trusting it only if its own stored
	// page size is self-consistent with the offset layout.
	tryAt := func(off int) *metaInfo {
		if off+4+metaFixedLen > len(probe) {
			return nil
		}
		ps := int(binary.BigEndian.Uint32(probe[off+16:]))
		if ps < minPageSz || off+ps > len(probe) {
			return nil
		}
		m, ok := parseMeta(probe[off : off+ps])
		if !ok || m.pageSize != ps {
			return nil
		}
		return m
	}
	best := tryAt(0)
	if best != nil {
		if m := tryAt(best.pageSize); m != nil && m.txid > best.txid {
			best = m
		}
	} else {
		// Slot 0 torn or never written: slot 1 sits at the (unknown) page
		// size; page sizes are powers of two, so probe them.
		for ps := minPageSz; ps <= 64*1024; ps *= 2 {
			if m := tryAt(ps); m != nil && m.pageSize == ps {
				best = m
				break
			}
		}
	}
	if best == nil {
		return fmt.Errorf("%w: no valid meta page", ErrBadFile)
	}
	t.pageSize = best.pageSize
	t.valSize = best.valSize
	t.txid = best.txid
	t.rootPage = best.root
	t.numPages = best.numPages
	t.count = best.count
	t.freeNow = best.free
	return nil
}

// --- node I/O ---

func (t *Tree) leafCap() int   { return (t.pageSize - nodeHdrLen) / (8 + t.valSize) }
func (t *Tree) branchCap() int { return (t.pageSize - nodeHdrLen) / 16 }

func (t *Tree) readNode(id uint64) (*node, error) {
	if id < 2 || id >= t.numPages {
		return nil, fmt.Errorf("%w: node page %d out of range", ErrBadFile, id)
	}
	b := make([]byte, t.pageSize)
	if _, err := t.f.ReadAt(b, int64(id)*int64(t.pageSize)); err != nil {
		return nil, fmt.Errorf("cow: read node %d: %w", id, err)
	}
	if binary.BigEndian.Uint32(b[0:]) != crc32.Checksum(b[4:], crcTable) {
		return nil, fmt.Errorf("%w: node %d checksum", ErrBadFile, id)
	}
	n := &node{page: id}
	typ := b[4]
	cnt := int(binary.BigEndian.Uint16(b[5:]))
	off := nodeHdrLen
	switch typ {
	case nodeLeaf:
		n.leaf = true
		if cnt > t.leafCap() {
			return nil, fmt.Errorf("%w: leaf %d count %d", ErrBadFile, id, cnt)
		}
		n.keys = make([]uint64, cnt)
		n.vals = make([][]byte, cnt)
		for i := 0; i < cnt; i++ {
			n.keys[i] = binary.BigEndian.Uint64(b[off:])
			off += 8
			n.vals[i] = append([]byte(nil), b[off:off+t.valSize]...)
			off += t.valSize
		}
	case nodeBranch:
		if cnt > t.branchCap() {
			return nil, fmt.Errorf("%w: branch %d count %d", ErrBadFile, id, cnt)
		}
		n.keys = make([]uint64, cnt)
		n.children = make([]uint64, cnt)
		n.kids = make([]*node, cnt)
		for i := 0; i < cnt; i++ {
			n.keys[i] = binary.BigEndian.Uint64(b[off:])
			n.children[i] = binary.BigEndian.Uint64(b[off+8:])
			off += 16
		}
	default:
		return nil, fmt.Errorf("%w: node %d type %d", ErrBadFile, id, typ)
	}
	return n, nil
}

func (t *Tree) writeNode(n *node, id uint64) error {
	b := make([]byte, t.pageSize)
	if n.leaf {
		b[4] = nodeLeaf
	} else {
		b[4] = nodeBranch
	}
	binary.BigEndian.PutUint16(b[5:], uint16(len(n.keys)))
	off := nodeHdrLen
	if n.leaf {
		for i, k := range n.keys {
			binary.BigEndian.PutUint64(b[off:], k)
			off += 8
			copy(b[off:], n.vals[i])
			off += t.valSize
		}
	} else {
		for i, k := range n.keys {
			binary.BigEndian.PutUint64(b[off:], k)
			binary.BigEndian.PutUint64(b[off+8:], n.children[i])
			off += 16
		}
	}
	binary.BigEndian.PutUint32(b[0:], crc32.Checksum(b[4:], crcTable))
	if _, err := t.f.WriteAt(b, int64(id)*int64(t.pageSize)); err != nil {
		return fmt.Errorf("cow: write node %d: %w", id, err)
	}
	t.pagesOut++
	return nil
}

// --- tree navigation ---

func (t *Tree) loadRoot() error {
	if t.root != nil {
		return nil
	}
	if t.rootPage == 0 {
		t.root = &node{leaf: true, dirty: true}
		return nil
	}
	r, err := t.readNode(t.rootPage)
	if err != nil {
		return err
	}
	t.root = r
	return nil
}

func (t *Tree) child(n *node, i int) (*node, error) {
	if n.kids[i] != nil {
		return n.kids[i], nil
	}
	c, err := t.readNode(n.children[i])
	if err != nil {
		return nil, err
	}
	n.kids[i] = c
	return c, nil
}

// touch returns a dirty (copy-on-write) version of child i of parent n,
// updating the parent's reference. The parent must itself be dirty.
func (t *Tree) touch(n *node, i int) (*node, error) {
	c, err := t.child(n, i)
	if err != nil {
		return nil, err
	}
	if c.dirty {
		return c, nil
	}
	cp := c.clone()
	cp.dirty = true
	if c.page != 0 {
		t.freePage(c.page)
	}
	cp.page = 0
	n.kids[i] = cp
	n.children[i] = 0
	return cp, nil
}

func (n *node) clone() *node {
	cp := &node{leaf: n.leaf, page: n.page}
	cp.keys = append([]uint64(nil), n.keys...)
	if n.leaf {
		cp.vals = make([][]byte, len(n.vals))
		for i, v := range n.vals {
			cp.vals[i] = append([]byte(nil), v...)
		}
	} else {
		cp.children = append([]uint64(nil), n.children...)
		cp.kids = append([]*node(nil), n.kids...)
	}
	return cp
}

func (t *Tree) freePage(id uint64) { t.freedTx = append(t.freedTx, id) }

func (t *Tree) allocPage() uint64 {
	if len(t.freeNow) > 0 {
		id := t.freeNow[len(t.freeNow)-1]
		t.freeNow = t.freeNow[:len(t.freeNow)-1]
		t.allocTx = append(t.allocTx, id)
		return id
	}
	id := t.numPages
	t.numPages++
	t.allocTx = append(t.allocTx, id)
	return id
}

// search returns the child slot for key k in branch n: the last i with
// keys[i] <= k, or 0.
func branchSlot(n *node, k uint64) int {
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > k }) - 1
	if i < 0 {
		i = 0
	}
	return i
}

// Get returns the value for key k.
func (t *Tree) Get(k uint64) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if err := t.loadRoot(); err != nil {
		return nil, err
	}
	n := t.root
	for !n.leaf {
		if len(n.keys) == 0 {
			return nil, ErrNotFound
		}
		c, err := t.child(n, branchSlot(n, k))
		if err != nil {
			return nil, err
		}
		n = c
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= k })
	if i < len(n.keys) && n.keys[i] == k {
		return append([]byte(nil), n.vals[i]...), nil
	}
	return nil, ErrNotFound
}

// Put inserts or replaces the value for key k. The value must be exactly
// ValSize bytes. The change is buffered until Commit.
func (t *Tree) Put(k uint64, v []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if len(v) != t.valSize {
		return fmt.Errorf("%w: %d bytes, want %d", ErrValSize, len(v), t.valSize)
	}
	if err := t.loadRoot(); err != nil {
		return err
	}
	t.ensureRootDirty()
	grew, err := t.putNode(t.root, k, v)
	if err != nil {
		return err
	}
	if grew {
		t.count++
	}
	t.dirty = true
	// Root split.
	if t.overflow(t.root) {
		left := t.root
		right := t.splitNode(left)
		newRoot := &node{
			dirty:    true,
			keys:     []uint64{minKey(left), minKey(right)},
			children: []uint64{0, 0},
			kids:     []*node{left, right},
		}
		t.root = newRoot
	}
	return nil
}

func (t *Tree) ensureRootDirty() {
	if !t.root.dirty {
		cp := t.root.clone()
		cp.dirty = true
		if t.root.page != 0 {
			t.freePage(t.root.page)
		}
		cp.page = 0
		t.root = cp
	}
}

func (t *Tree) overflow(n *node) bool {
	if n.leaf {
		return len(n.keys) > t.leafCap()
	}
	return len(n.keys) > t.branchCap()
}

func minKey(n *node) uint64 {
	if len(n.keys) == 0 {
		return 0
	}
	return n.keys[0]
}

// splitNode splits an overfull dirty node in half, returning the new right
// sibling.
func (t *Tree) splitNode(n *node) *node {
	mid := len(n.keys) / 2
	r := &node{leaf: n.leaf, dirty: true}
	r.keys = append(r.keys, n.keys[mid:]...)
	n.keys = n.keys[:mid]
	if n.leaf {
		r.vals = append(r.vals, n.vals[mid:]...)
		n.vals = n.vals[:mid]
	} else {
		r.children = append(r.children, n.children[mid:]...)
		r.kids = append(r.kids, n.kids[mid:]...)
		n.children = n.children[:mid]
		n.kids = n.kids[:mid]
	}
	return r
}

// putNode inserts into dirty node n; reports whether the tree gained a key.
func (t *Tree) putNode(n *node, k uint64, v []byte) (bool, error) {
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= k })
		if i < len(n.keys) && n.keys[i] == k {
			n.vals[i] = append([]byte(nil), v...)
			return false, nil
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = append([]byte(nil), v...)
		return true, nil
	}
	if len(n.keys) == 0 {
		// Empty branch (only possible transiently): degrade to leaf.
		n.leaf = true
		n.children, n.kids = nil, nil
		return t.putNode(n, k, v)
	}
	slot := branchSlot(n, k)
	c, err := t.touch(n, slot)
	if err != nil {
		return false, err
	}
	grew, err := t.putNode(c, k, v)
	if err != nil {
		return false, err
	}
	// Maintain separator: inserting below the smallest key lowers child 0's
	// minimum.
	if k < n.keys[slot] {
		n.keys[slot] = k
	}
	if t.overflow(c) {
		r := t.splitNode(c)
		n.keys = append(n.keys, 0)
		copy(n.keys[slot+2:], n.keys[slot+1:])
		n.keys[slot+1] = minKey(r)
		n.children = append(n.children, 0)
		copy(n.children[slot+2:], n.children[slot+1:])
		n.children[slot+1] = 0
		n.kids = append(n.kids, nil)
		copy(n.kids[slot+2:], n.kids[slot+1:])
		n.kids[slot+1] = r
	}
	return grew, nil
}

// Delete removes key k. Underfull nodes are not rebalanced (PTT deletions
// run in ascending TID order, so old leaves empty out and are removed
// whole); empty nodes are unlinked.
func (t *Tree) Delete(k uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if err := t.loadRoot(); err != nil {
		return err
	}
	t.ensureRootDirty()
	removed, err := t.deleteNode(t.root, k)
	if err != nil {
		return err
	}
	if !removed {
		return ErrNotFound
	}
	t.count--
	t.dirty = true
	// Collapse a single-child root chain.
	for !t.root.leaf && len(t.root.keys) == 1 {
		c, err := t.touch(t.root, 0)
		if err != nil {
			return err
		}
		t.root = c
	}
	return nil
}

func (t *Tree) deleteNode(n *node, k uint64) (bool, error) {
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= k })
		if i >= len(n.keys) || n.keys[i] != k {
			return false, nil
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true, nil
	}
	if len(n.keys) == 0 {
		return false, nil
	}
	slot := branchSlot(n, k)
	c, err := t.touch(n, slot)
	if err != nil {
		return false, err
	}
	removed, err := t.deleteNode(c, k)
	if err != nil || !removed {
		return removed, err
	}
	if len(c.keys) == 0 {
		n.keys = append(n.keys[:slot], n.keys[slot+1:]...)
		n.children = append(n.children[:slot], n.children[slot+1:]...)
		n.kids = append(n.kids[:slot], n.kids[slot+1:]...)
	} else {
		n.keys[slot] = minKey(c)
	}
	return true, nil
}

// Scan calls fn for every key in [from, to] in ascending order; fn returning
// false stops the scan.
func (t *Tree) Scan(from, to uint64, fn func(k uint64, v []byte) bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if err := t.loadRoot(); err != nil {
		return err
	}
	_, err := t.scanNode(t.root, from, to, fn)
	return err
}

func (t *Tree) scanNode(n *node, from, to uint64, fn func(uint64, []byte) bool) (bool, error) {
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= from })
		for ; i < len(n.keys) && n.keys[i] <= to; i++ {
			if !fn(n.keys[i], append([]byte(nil), n.vals[i]...)) {
				return false, nil
			}
		}
		return true, nil
	}
	start := 0
	if len(n.keys) > 0 {
		start = branchSlot(n, from)
	}
	for i := start; i < len(n.keys); i++ {
		if i > start && n.keys[i] > to {
			break
		}
		c, err := t.child(n, i)
		if err != nil {
			return false, err
		}
		cont, err := t.scanNode(c, from, to, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// Len returns the number of entries (committed and pending).
func (t *Tree) Len() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Commit writes all dirty nodes copy-on-write, flips the meta atomically and
// (unless NoSync) fsyncs. After Commit the new state is the one recovered
// after a crash.
func (t *Tree) Commit() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if !t.dirty {
		return nil
	}
	rootID, err := t.flushNode(t.root)
	if err != nil {
		return err
	}
	if !t.noSync {
		if err := t.f.Sync(); err != nil {
			return fmt.Errorf("cow: sync nodes: %w", err)
		}
	}
	// Snapshot the pre-flip state so a failed meta write or sync can revert
	// to it: otherwise a retried Commit would advance txid twice and aim the
	// retry at the slot holding the last durable meta.
	oldTxid, oldRoot := t.txid, t.rootPage
	oldFreeNow, oldFreedTx, oldAllocTx := t.freeNow, t.freedTx, t.allocTx
	revert := func() {
		t.txid, t.rootPage = oldTxid, oldRoot
		t.freeNow, t.freedTx, t.allocTx = oldFreeNow, oldFreedTx, oldAllocTx
	}
	t.txid++
	t.rootPage = rootID
	// Pages freed this txn become reusable only after this meta is the
	// fallback, i.e. from the next transaction on.
	nextFree := append(append([]uint64(nil), t.freeNow...), t.freedTx...)
	t.freeNow, t.freedTx, t.allocTx = nextFree, nil, nil
	if err := t.writeMeta(); err != nil {
		revert()
		return err
	}
	if !t.noSync {
		if err := t.f.Sync(); err != nil {
			revert()
			return fmt.Errorf("cow: sync meta: %w", err)
		}
	}
	t.dirty = false
	t.commits++
	return nil
}

// flushNode writes dirty node n (and dirty descendants) to fresh pages and
// returns n's page ID. An empty root yields page 0 (empty tree).
func (t *Tree) flushNode(n *node) (uint64, error) {
	if n.leaf {
		if !n.dirty {
			return n.page, nil
		}
		if len(n.keys) == 0 && n == t.root {
			n.dirty = false
			n.page = 0
			return 0, nil
		}
		id := t.allocPage()
		if err := t.writeNode(n, id); err != nil {
			return 0, err
		}
		n.dirty = false
		n.page = id
		return id, nil
	}
	if !n.dirty {
		return n.page, nil
	}
	for i := range n.kids {
		if n.kids[i] != nil && n.kids[i].dirty {
			id, err := t.flushNode(n.kids[i])
			if err != nil {
				return 0, err
			}
			n.children[i] = id
		} else if n.kids[i] != nil {
			n.children[i] = n.kids[i].page
		}
	}
	id := t.allocPage()
	if err := t.writeNode(n, id); err != nil {
		return 0, err
	}
	n.dirty = false
	n.page = id
	return id, nil
}

// Rollback discards uncommitted changes, reverting to the last commit.
func (t *Tree) Rollback() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if !t.dirty {
		return nil
	}
	// Reload the committed meta; it restores root, count and the free list
	// (pages popped for this transaction's copies return with it). The
	// in-memory tree rebuilds lazily from disk.
	t.root = nil
	t.freedTx = nil
	t.allocTx = nil
	t.dirty = false
	return t.loadMeta()
}

// Stats returns commit and node-write counters.
func (t *Tree) Stats() (commits, pageWrites uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.commits, t.pagesOut
}

// NumPages returns the file's page high-water mark.
func (t *Tree) NumPages() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.numPages
}

// CloseNoCommit closes the file abruptly, discarding uncommitted changes —
// it simulates a process crash for recovery testing.
func (t *Tree) CloseNoCommit() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	return t.f.Close()
}

// Close commits pending changes and closes the file.
func (t *Tree) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.mu.Unlock()
	err := t.Commit()
	t.mu.Lock()
	defer t.mu.Unlock()
	if err2 := t.f.Close(); err == nil {
		err = err2
	}
	t.closed = true
	return err
}
