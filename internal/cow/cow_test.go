package cow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T, valSize int) (*Tree, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ptt.cow")
	tr, err := Open(path, Options{PageSize: 256, ValSize: valSize, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr, path
}

func v12(x uint64) []byte {
	b := make([]byte, 12)
	binary.BigEndian.PutUint64(b, x)
	return b
}

func TestPutGet(t *testing.T) {
	tr, _ := openTemp(t, 12)
	for i := uint64(1); i <= 100; i++ {
		if err := tr.Put(i, v12(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := uint64(1); i <= 100; i++ {
		got, err := tr.Get(i)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if binary.BigEndian.Uint64(got) != i*10 {
			t.Fatalf("Get(%d) = %d", i, binary.BigEndian.Uint64(got))
		}
	}
	if _, err := tr.Get(999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	// Overwrite does not grow Len.
	if err := tr.Put(5, v12(777)); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len after overwrite = %d", tr.Len())
	}
	got, _ := tr.Get(5)
	if binary.BigEndian.Uint64(got) != 777 {
		t.Fatal("overwrite lost")
	}
}

func TestWrongValSize(t *testing.T) {
	tr, _ := openTemp(t, 12)
	if err := tr.Put(1, []byte("short")); !errors.Is(err, ErrValSize) {
		t.Fatalf("err = %v", err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.cow")
	tr, err := Open(path, Options{PageSize: 256, ValSize: 8, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		if err := tr.Put(i, v8(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Commit(); err != nil {
		t.Fatal(err)
	}
	tr.Close()

	tr2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tr2.Len() != 500 {
		t.Fatalf("Len after reopen = %d", tr2.Len())
	}
	for i := uint64(0); i < 500; i++ {
		got, err := tr2.Get(i)
		if err != nil || binary.BigEndian.Uint64(got) != i {
			t.Fatalf("Get(%d) = %v, %v", i, got, err)
		}
	}
	if _, err := Open(path, Options{ValSize: 16, NoSync: true}); err == nil {
		t.Fatal("mismatched value size accepted")
	}
}

func v8(x uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, x)
	return b
}

func TestUncommittedChangesRollBack(t *testing.T) {
	tr, _ := openTemp(t, 8)
	tr.Put(1, v8(1))
	tr.Commit()
	tr.Put(2, v8(2))
	tr.Delete(1)
	if err := tr.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Get(1); err != nil {
		t.Fatalf("committed key lost in rollback: %v", err)
	}
	if _, err := tr.Get(2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("uncommitted key survived rollback: %v", err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestCrashRevertsToLastCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.cow")
	tr, err := Open(path, Options{PageSize: 256, ValSize: 8, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		tr.Put(i, v8(i))
	}
	tr.Commit()
	for i := uint64(50); i < 100; i++ {
		tr.Put(i, v8(i))
	}
	// "Crash": close the fd without Commit.
	// (Close would commit, so reach in and drop the state.)
	tr.mu.Lock()
	tr.f.Close()
	tr.closed = true
	tr.mu.Unlock()

	tr2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tr2.Len() != 50 {
		t.Fatalf("Len after crash = %d, want 50", tr2.Len())
	}
	if _, err := tr2.Get(75); !errors.Is(err, ErrNotFound) {
		t.Fatal("uncommitted key survived crash")
	}
}

func TestTornMetaFallsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.cow")
	tr, err := Open(path, Options{PageSize: 256, ValSize: 8, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	tr.Put(1, v8(1))
	tr.Commit() // txid 2 -> slot 0
	tr.Put(2, v8(2))
	tr.Commit() // txid 3 -> slot 1
	tr.Close()

	// Corrupt the newest meta (txid 3 lives in slot 3%2=1).
	f, _ := os.OpenFile(path, os.O_RDWR, 0)
	f.WriteAt([]byte{0xde, 0xad}, 256+10)
	f.Close()

	tr2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	// Falls back to txid 2 state: key 1 present, key 2 state unknown to the
	// fallback meta (it was committed in the torn meta's txn).
	if _, err := tr2.Get(1); err != nil {
		t.Fatalf("fallback state lost key 1: %v", err)
	}
	if _, err := tr2.Get(2); !errors.Is(err, ErrNotFound) {
		t.Fatal("torn meta's key visible after fallback")
	}
}

func TestDelete(t *testing.T) {
	tr, _ := openTemp(t, 8)
	for i := uint64(0); i < 300; i++ {
		tr.Put(i, v8(i))
	}
	// Delete in ascending order, the PTT GC pattern.
	for i := uint64(0); i < 200; i++ {
		if err := tr.Delete(i); err != nil {
			t.Fatalf("Delete(%d): %v", i, err)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := uint64(0); i < 200; i++ {
		if _, err := tr.Get(i); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key %d still present", i)
		}
	}
	for i := uint64(200); i < 300; i++ {
		if _, err := tr.Get(i); err != nil {
			t.Fatalf("surviving key %d lost: %v", i, err)
		}
	}
	if err := tr.Delete(9999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleting missing key: %v", err)
	}
	// Delete everything; tree must still work.
	for i := uint64(200); i < 300; i++ {
		tr.Delete(i)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	tr.Commit()
	if err := tr.Put(7, v8(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Get(7); err != nil {
		t.Fatal(err)
	}
}

func TestScan(t *testing.T) {
	tr, _ := openTemp(t, 8)
	for i := uint64(0); i < 100; i += 2 {
		tr.Put(i, v8(i))
	}
	var got []uint64
	tr.Scan(10, 20, func(k uint64, v []byte) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{10, 12, 14, 16, 18, 20}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	// Early stop.
	n := 0
	tr.Scan(0, 99, func(uint64, []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop scanned %d", n)
	}
	// Empty range.
	n = 0
	tr.Scan(1, 1, func(uint64, []byte) bool { n++; return true })
	if n != 0 {
		t.Fatal("scan of absent range returned entries")
	}
}

func TestPageReuse(t *testing.T) {
	tr, _ := openTemp(t, 8)
	for i := uint64(0); i < 200; i++ {
		tr.Put(i, v8(i))
		if i%10 == 0 {
			tr.Commit()
		}
	}
	tr.Commit()
	grew := tr.NumPages()
	// Steady-state churn: overwrites must reuse freed pages, not grow the
	// file without bound.
	for round := 0; round < 50; round++ {
		for i := uint64(0); i < 200; i += 17 {
			tr.Put(i, v8(i+uint64(round)))
		}
		tr.Commit()
	}
	if tr.NumPages() > grew*3 {
		t.Fatalf("file grew from %d to %d pages despite free list", grew, tr.NumPages())
	}
}

func TestRandomOpsAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir, err := os.MkdirTemp("", "cow")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "t.cow")
		tr, err := Open(path, Options{PageSize: 128, ValSize: 8, NoSync: true})
		if err != nil {
			return false
		}
		model := map[uint64]uint64{}
		committed := map[uint64]uint64{}
		for op := 0; op < 400; op++ {
			k := uint64(rng.Intn(60))
			switch rng.Intn(6) {
			case 0, 1, 2:
				v := rng.Uint64()
				if tr.Put(k, v8(v)) != nil {
					return false
				}
				model[k] = v
			case 3:
				err := tr.Delete(k)
				_, had := model[k]
				if had != (err == nil) {
					t.Logf("seed %d: delete(%d) err=%v had=%v", seed, k, err, had)
					return false
				}
				delete(model, k)
			case 4:
				if tr.Commit() != nil {
					return false
				}
				committed = clone(model)
			case 5:
				if tr.Rollback() != nil {
					return false
				}
				model = clone(committed)
			}
		}
		// Verify model equivalence.
		if int(tr.Len()) != len(model) {
			t.Logf("seed %d: len %d vs model %d", seed, tr.Len(), len(model))
			return false
		}
		for k, v := range model {
			got, err := tr.Get(k)
			if err != nil || binary.BigEndian.Uint64(got) != v {
				t.Logf("seed %d: get(%d) = %v,%v want %d", seed, k, got, err, v)
				return false
			}
		}
		// Reopen and verify committed state round-trips.
		tr.Commit()
		tr.Close()
		tr2, err := Open(path, Options{NoSync: true})
		if err != nil {
			return false
		}
		defer tr2.Close()
		for k, v := range model {
			got, err := tr2.Get(k)
			if err != nil || binary.BigEndian.Uint64(got) != v {
				t.Logf("seed %d: after reopen get(%d) = %v,%v want %d", seed, k, got, err, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func clone(m map[uint64]uint64) map[uint64]uint64 {
	out := make(map[uint64]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func TestAscendingInsertTailClustered(t *testing.T) {
	// The PTT usage pattern: ascending TIDs. Verify scans return ascending
	// order and the last key is reachable.
	tr, _ := openTemp(t, 8)
	for i := uint64(1); i <= 1000; i++ {
		tr.Put(i, v8(i))
	}
	last := uint64(0)
	tr.Scan(0, ^uint64(0), func(k uint64, v []byte) bool {
		if k <= last && last != 0 {
			t.Fatalf("scan out of order: %d after %d", k, last)
		}
		last = k
		return true
	})
	if last != 1000 {
		t.Fatalf("last scanned = %d", last)
	}
}

func TestUseAfterClose(t *testing.T) {
	tr, _ := openTemp(t, 8)
	tr.Close()
	if err := tr.Put(1, v8(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
	if _, err := tr.Get(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("get after close: %v", err)
	}
}
