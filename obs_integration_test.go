package immortaldb

import (
	"testing"
	"time"

	"immortaldb/internal/obs"
)

// TestCommitSlowOpSpanTree proves the acceptance criterion end to end: a
// commit that exceeds the slow-op threshold records its span tree — the
// tx.commit root with the publish (commitMu section) and fsync children —
// in the slow-op ring. The commit is "artificially delayed" by dropping the
// threshold to zero so even a fast test commit qualifies; the tree shape is
// what matters.
func TestCommitSlowOpSpanTree(t *testing.T) {
	if !obs.Enabled() {
		t.Skip("obs compiled out (obsoff)")
	}
	defer obs.SetSlowOpThreshold(100 * time.Millisecond)
	obs.ResetSlowOps()
	obs.SetSlowOpThreshold(0)

	db, _ := openTestDB(t, nil)
	tbl, err := db.CreateTable("t", TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}
	set(t, db, tbl, "k", "v")
	obs.SetSlowOpThreshold(time.Hour) // freeze the ring before inspecting

	var commit *obs.SlowOp
	for _, op := range obs.SlowOps() {
		if op.Root.Name == "tx.commit" {
			commit = &op
			break
		}
	}
	if commit == nil {
		t.Fatal("no tx.commit slow op recorded")
	}
	var names []string
	for _, c := range commit.Root.Children {
		names = append(names, c.Name)
	}
	want := map[string]bool{"commit.publish": false, "commit.fsync": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("span tree missing child %q (children: %v)", n, names)
		}
	}
}

// TestCommitLatencyHistogram checks the commit histogram accumulates and is
// visible through the exposition snapshot API /metrics uses.
func TestCommitLatencyHistogram(t *testing.T) {
	if !obs.Enabled() {
		t.Skip("obs compiled out (obsoff)")
	}
	count0, _, _, ok := obs.HistogramSnapshot("immortaldb_commit_seconds", 0.5)
	if !ok {
		t.Fatal("immortaldb_commit_seconds not registered")
	}
	db, _ := openTestDB(t, nil)
	tbl, err := db.CreateTable("t", TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		set(t, db, tbl, "k", "v")
	}
	count1, sum, qs, _ := obs.HistogramSnapshot("immortaldb_commit_seconds", 0.5)
	if count1 < count0+n {
		t.Fatalf("commit histogram count = %d, want >= %d", count1, count0+n)
	}
	if sum <= 0 || qs[0] < 0 {
		t.Fatalf("commit histogram sum=%g p50=%g", sum, qs[0])
	}
}
