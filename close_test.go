package immortaldb

import (
	"errors"
	"testing"
	"time"
)

// TestCloseAbortsOpenTransactions drives the shutdown drain end to end: an
// in-flight operation is waited out, new Begin calls are refused while the
// drain runs, the killed transaction's later operations fail with ErrAborted,
// and after reopening the rolled-back write is gone while committed data
// survives.
func TestCloseAbortsOpenTransactions(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, testOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t", TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}
	set(t, db, tbl, "committed", "stays")

	tx, err := db.Begin(Serializable)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Set(tbl, []byte("open"), []byte("goes")); err != nil {
		t.Fatal(err)
	}
	// Simulate an operation caught mid-flight: Close must wait for it.
	if err := tx.opEnter(false); err != nil {
		t.Fatal(err)
	}

	closeDone := make(chan error, 1)
	go func() { closeDone <- db.Close() }()

	// Wait for Close to start draining.
	for {
		db.mu.Lock()
		draining := db.draining
		db.mu.Unlock()
		if draining {
			break
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := db.Begin(Serializable); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Begin during drain: got %v, want ErrShuttingDown", err)
	}
	if err := tx.Set(tbl, []byte("late"), []byte("x")); !errors.Is(err, ErrAborted) {
		t.Fatalf("write on killed tx: got %v, want ErrAborted", err)
	}
	select {
	case err := <-closeDone:
		t.Fatalf("Close returned before the in-flight op drained: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	db.opExit() // the in-flight op finishes
	if err := <-closeDone; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("Commit after Close: got %v, want ErrAborted", err)
	}

	db2, err := Open(dir, testOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	rtx, err := db2.Begin(Serializable)
	if err != nil {
		t.Fatal(err)
	}
	defer rtx.Rollback()
	if v, ok := get(t, rtx, tbl2, "committed"); !ok || v != "stays" {
		t.Fatalf("committed row after reopen: %q, %v", v, ok)
	}
	if _, ok := get(t, rtx, tbl2, "open"); ok {
		t.Fatal("rolled-back write visible after reopen")
	}
}

// TestCloseDrainTimeout pins an operation in flight forever; Close must give
// up after DrainTimeout, leave the straggler for recovery, and still close
// the files. A reopen then undoes the straggler's update.
func TestCloseDrainTimeout(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, testOpts(func(o *Options) {
		o.DrainTimeout = 50 * time.Millisecond
	}))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t", TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin(Serializable)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Set(tbl, []byte("stuck"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.opEnter(false); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if waited := time.Since(start); waited < 50*time.Millisecond {
		t.Fatalf("Close returned after %v, before the drain timeout", waited)
	}

	db2, err := Open(dir, testOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	rtx, err := db2.Begin(Serializable)
	if err != nil {
		t.Fatal(err)
	}
	defer rtx.Rollback()
	if _, ok := get(t, rtx, tbl2, "stuck"); ok {
		t.Fatal("straggler's write visible after recovery")
	}
}

// TestCloseIdempotent ensures double Close is safe and Begin after Close
// fails cleanly.
func TestCloseIdempotent(t *testing.T) {
	db, _ := openTestDB(t, nil)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := db.Begin(Serializable); err == nil {
		t.Fatal("Begin after Close succeeded")
	}
}

// TestStatsSnapshot sanity-checks the counter snapshot that feeds /metrics.
func TestStatsSnapshot(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, err := db.CreateTable("t", TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		set(t, db, tbl, "k", "v")
	}
	tx, _ := db.Begin(Serializable)
	tx.Set(tbl, []byte("x"), []byte("y"))
	tx.Rollback()

	s := db.Stats()
	if s.Commits != 5 {
		t.Fatalf("Commits = %d, want 5", s.Commits)
	}
	if s.Aborts != 1 {
		t.Fatalf("Aborts = %d, want 1", s.Aborts)
	}
	if s.OpenTxns != 0 {
		t.Fatalf("OpenTxns = %d, want 0", s.OpenTxns)
	}
	if s.LogAppends == 0 {
		t.Fatal("LogAppends = 0")
	}
	if s.MeanCommitBatch() < 0 {
		t.Fatal("negative mean commit batch")
	}
}
