module immortaldb

go 1.22
