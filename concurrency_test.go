package immortaldb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentWritersAndReaders hammers the engine from many goroutines:
// serializable writers on overlapping key ranges (expecting occasional
// deadlock aborts), snapshot readers verifying per-key monotonic version
// counters, AS OF readers over past states, and periodic checkpoints — all
// meant to run under -race.
func TestConcurrentWritersAndReaders(t *testing.T) {
	db, _ := openTestDB(t, func(o *Options) {
		o.PageSize = 2048
		o.LockTimeout = 5 * time.Second
	})
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	const keys = 24
	for k := 0; k < keys; k++ {
		set(t, db, tbl, fmt.Sprintf("k%02d", k), "0")
	}

	var (
		wg        sync.WaitGroup
		stop      atomic.Bool
		commits   atomic.Int64
		conflicts atomic.Int64
		failures  atomic.Int64
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
		stop.Store(true)
	}

	// Writers: each picks two keys and bumps both in one transaction.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load() && i < 250; i++ {
				a := fmt.Sprintf("k%02d", (w*7+i)%keys)
				b := fmt.Sprintf("k%02d", (w*7+i+3)%keys)
				tx, err := db.Begin(Serializable)
				if err != nil {
					fail("begin: %v", err)
					return
				}
				err = func() error {
					for _, k := range []string{a, b} {
						v, _, err := tx.Get(tbl, []byte(k))
						if err != nil {
							return err
						}
						if err := tx.Set(tbl, []byte(k), append(v, 'x')); err != nil {
							return err
						}
					}
					return nil
				}()
				if err != nil {
					tx.Rollback()
					conflicts.Add(1) // deadlock or lock timeout: retryable
					continue
				}
				if err := tx.Commit(); err != nil {
					fail("commit: %v", err)
					return
				}
				commits.Add(1)
			}
		}(w)
	}

	// Snapshot readers: every snapshot must be internally consistent (no
	// torn two-key writes: both keys of a writer's pair move together only
	// within a transaction, so their length difference is bounded by
	// concurrent writers).
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load() && i < 400; i++ {
				tx, err := db.Begin(SnapshotIsolation)
				if err != nil {
					fail("snap begin: %v", err)
					return
				}
				n := 0
				err = tx.Scan(tbl, nil, nil, func(k, v []byte) bool {
					n++
					return true
				})
				tx.Commit()
				if err != nil {
					fail("snap scan: %v", err)
					return
				}
				if n != keys {
					fail("snapshot scan saw %d keys, want %d", n, keys)
					return
				}
			}
		}()
	}

	// AS OF reader walking historical states.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load() && i < 200; i++ {
			tx, err := db.BeginAsOfTS(db.Now())
			if err != nil {
				fail("asof begin: %v", err)
				return
			}
			if _, _, err := tx.Get(tbl, []byte("k00")); err != nil {
				fail("asof get: %v", err)
				return
			}
			tx.Commit()
		}
	}()

	// Checkpointer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load() && i < 20; i++ {
			if err := db.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
				fail("checkpoint: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	if failures.Load() > 0 {
		return
	}
	t.Logf("commits=%d conflicts=%d", commits.Load(), conflicts.Load())
	if commits.Load() == 0 {
		t.Fatal("no writer ever committed")
	}
	// Total version count across keys equals 2 per committed writer txn
	// (initial inserts excluded) — nothing lost, nothing duplicated.
	total := 0
	for k := 0; k < keys; k++ {
		hist, err := db.History(tbl, []byte(fmt.Sprintf("k%02d", k)))
		if err != nil {
			t.Fatal(err)
		}
		total += len(hist) - 1 // minus the initial insert
		for _, h := range hist {
			if h.Pending {
				t.Fatalf("pending version leaked into history of k%02d", k)
			}
		}
	}
	if int64(total) != 2*commits.Load() {
		t.Fatalf("history has %d writer versions, want %d", total, 2*commits.Load())
	}
}
