package immortaldb

// Engine-level replication: a follower's log copy is grown byte-for-byte
// from the primary's via ShipRead/IngestChunk, continuous redo advances the
// replication horizon, reads are served at it, and every write path is
// refused. Crash/catch-up, base-snapshot seeding, and point-in-time restore
// ride the same machinery.

import (
	"errors"
	"path/filepath"
	"testing"

	"immortaldb/internal/wal"
)

// shipAll pumps the primary's durable log into the replica's copy until the
// replica is caught up, then applies everything.
func shipAll(t *testing.T, p, r *DB) {
	t.Helper()
	for {
		ch, err := p.Log().ShipRead(r.Log().End(), 4096)
		if err != nil {
			t.Fatalf("ShipRead: %v", err)
		}
		if len(ch.Data) == 0 {
			break
		}
		if err := r.Log().IngestChunk(ch); err != nil {
			t.Fatalf("IngestChunk at %d: %v", ch.At, err)
		}
	}
	if _, err := r.ReplicaApply(0); err != nil {
		t.Fatalf("ReplicaApply: %v", err)
	}
}

func TestReplicaServesReadsAtHorizon(t *testing.T) {
	pdir, rdir := t.TempDir(), t.TempDir()
	opts := &Options{Clock: testClock(), PageSize: 1024, CacheFrames: 16}
	p, err := Open(pdir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tbl, err := p.CreateTable("acct", TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := commitKV(t, p, tbl, "alice", "100")
	commitKV(t, p, tbl, "alice", "150")
	commitKV(t, p, tbl, "bob", "50")

	r, err := OpenReplica(rdir, &Options{Clock: testClock(), PageSize: 1024, CacheFrames: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	shipAll(t, p, r)

	h := r.Horizon()
	if h.MaxVisible != p.Now() {
		t.Fatalf("horizon %v, primary visible %v", h.MaxVisible, p.Now())
	}

	// Current reads through the ordinary Begin path.
	tx, err := r.Begin(Serializable) // downgrades to snapshot-at-horizon
	if err != nil {
		t.Fatal(err)
	}
	rtbl, err := r.Table("acct")
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := tx.Get(rtbl, []byte("alice"))
	if err != nil || !ok || string(v) != "150" {
		t.Fatalf("replica read alice = %q %v %v, want 150", v, ok, err)
	}
	// Writes are refused with the typed error.
	if err := tx.Set(rtbl, []byte("alice"), []byte("0")); !errors.Is(err, ErrReplica) {
		t.Fatalf("replica write: %v, want ErrReplica", err)
	}
	tx.Commit()

	// AS OF at a past commit sees that state.
	wantState(t, r, rtbl, ts1, "replica AS OF first commit", map[string]string{"alice": "100"})
	// AS OF exactly at the horizon is allowed.
	if tx, err := r.BeginAsOfTS(r.Horizon().MaxVisible); err != nil {
		t.Fatalf("AS OF at horizon: %v", err)
	} else {
		tx.Commit()
	}
	// One tick past the horizon is the typed horizon error, not a torn view.
	if _, err := r.BeginAsOfTS(r.Horizon().MaxVisible.Next()); !errors.Is(err, ErrBeyondHorizon) {
		t.Fatalf("AS OF past horizon: %v, want ErrBeyondHorizon", err)
	}
	// DDL is refused too.
	if _, err := r.CreateTable("x", TableOptions{}); !errors.Is(err, ErrReplica) {
		t.Fatalf("replica CreateTable: %v, want ErrReplica", err)
	}
	if err := r.Checkpoint(); !errors.Is(err, ErrReplica) {
		t.Fatalf("replica Checkpoint: %v, want ErrReplica", err)
	}
}

func TestReplicaCrashResyncAndCheckpoint(t *testing.T) {
	pdir, rdir := t.TempDir(), t.TempDir()
	opts := &Options{Clock: testClock(), PageSize: 1024, CacheFrames: 16}
	p, err := Open(pdir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tbl, err := p.CreateTable("acct", TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		commitKV(t, p, tbl, "k", string(rune('a'+i)))
	}

	r, err := OpenReplica(rdir, opts)
	if err != nil {
		t.Fatal(err)
	}
	shipAll(t, p, r)
	h1 := r.Horizon()
	r.crash() // no checkpoint, no flush of ingested state beyond what redo wrote

	// More primary commits while the follower is down, plus a checkpoint so
	// the shipped stream carries a checkpoint record.
	for i := 0; i < 5; i++ {
		commitKV(t, p, tbl, "k2", string(rune('a'+i)))
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitKV(t, p, tbl, "k3", "z")

	// Reopen: ordinary recovery over the log copy, then resync from its end.
	r, err = OpenReplica(rdir, opts)
	if err != nil {
		t.Fatalf("reopen replica: %v", err)
	}
	defer r.Close()
	if h := r.Horizon(); h.AppliedLSN < h1.AppliedLSN {
		t.Fatalf("horizon regressed across crash: %d < %d", h.AppliedLSN, h1.AppliedLSN)
	}
	shipAll(t, p, r)
	if got, want := r.Horizon().MaxVisible, p.Now(); got != want {
		t.Fatalf("post-resync horizon %v, want %v", got, want)
	}
	// The primary checkpoint record drove a local one.
	if r.Log().Checkpoint() == 0 {
		t.Fatal("replica checkpoint pointer not set by shipped checkpoint record")
	}
	rtbl, err := r.Table("acct")
	if err != nil {
		t.Fatal(err)
	}
	r.View(func(tx *Tx) error {
		v, ok, err := tx.Get(rtbl, []byte("k3"))
		if err != nil || !ok || string(v) != "z" {
			t.Fatalf("post-resync read k3 = %q %v %v", v, ok, err)
		}
		return nil
	})

	// Crash again after the local checkpoint: recovery must start from it.
	r.crash()
	r, err = OpenReplica(rdir, opts)
	if err != nil {
		t.Fatalf("reopen after checkpointed crash: %v", err)
	}
	defer r.Close()
	shipAll(t, p, r)
	rtbl, _ = r.Table("acct")
	wantState(t, r, rtbl, r.Horizon().MaxVisible, "replica after second crash",
		map[string]string{"k": "t", "k2": "e", "k3": "z"})
}

func TestReplicaBaseSnapshotSeeding(t *testing.T) {
	pdir, rdir := t.TempDir(), t.TempDir()
	// Small segments so checkpoint truncation actually reclaims the chain
	// head and a fresh follower cannot catch up from the log alone.
	opts := &Options{Clock: testClock(), PageSize: 1024, CacheFrames: 16, WALSegmentSize: 4096}
	p, err := Open(pdir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tbl, err := p.CreateTable("acct", TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}
	asOfMid := Timestamp{}
	for i := 0; i < 60; i++ {
		commitKV(t, p, tbl, "key"+string(rune('A'+i%7)), string(rune('a'+i%26)))
		if i%10 == 9 {
			if err := p.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if i == 30 {
			asOfMid = p.Now()
		}
	}
	if p.Log().FirstRetained() == wal.FirstLSN {
		t.Fatal("test premise: truncation should have reclaimed the chain head")
	}

	// A fresh follower's pull from genesis reports the gap.
	if _, err := p.Log().ShipRead(wal.FirstLSN, 4096); !errors.Is(err, wal.ErrShipGap) {
		t.Fatalf("ship from genesis: %v, want ErrShipGap", err)
	}

	// Seed from a base snapshot instead.
	base, err := p.NewBaseSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	bi, err := InstallBase(rdir, opts, base.PageSize, base.NumPages, base.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Pages(func(id uint64, img []byte) error { return bi.WritePage(id, img) }); err != nil {
		t.Fatal(err)
	}
	for _, e := range base.PTT {
		if err := bi.PutPTT(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := bi.StartLog(base.StartSeq, base.LogStart); err != nil {
		t.Fatal(err)
	}
	for bi.End() <= base.CkptLSN {
		ch, err := p.Log().ShipRead(wal.LSN(bi.End()), 4096)
		if err != nil {
			t.Fatalf("base suffix ShipRead: %v", err)
		}
		if len(ch.Data) == 0 {
			t.Fatal("caught up before covering the checkpoint record")
		}
		if err := bi.Ingest(ch); err != nil {
			t.Fatalf("base suffix ingest: %v", err)
		}
	}
	if err := bi.Finish(base.CkptLSN); err != nil {
		t.Fatal(err)
	}
	base.Close()

	r, err := OpenReplica(rdir, opts)
	if err != nil {
		t.Fatalf("open base-seeded replica: %v", err)
	}
	defer r.Close()
	shipAll(t, p, r)
	if got, want := r.Horizon().MaxVisible, p.Now(); got != want {
		t.Fatalf("seeded horizon %v, want %v", got, want)
	}
	rtbl, err := r.Table("acct")
	if err != nil {
		t.Fatal(err)
	}
	ptbl, _ := p.Table("acct")
	// Full current state matches the primary exactly.
	if got, want := stateAsOf(t, r, rtbl, r.Horizon().MaxVisible), stateAsOf(t, p, ptbl, p.Now()); len(got) != len(want) {
		t.Fatalf("seeded replica state %v, want %v", got, want)
	} else {
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("seeded replica %s = %q, want %q", k, got[k], v)
			}
		}
	}
	// Historical reads predating the base snapshot still work: versions live
	// in the copied tree pages, not the truncated log.
	wantMid := stateAsOf(t, p, ptbl, asOfMid)
	gotMid := stateAsOf(t, r, rtbl, asOfMid)
	for k, v := range wantMid {
		if gotMid[k] != v {
			t.Fatalf("seeded replica AS OF mid %s = %q, want %q", k, gotMid[k], v)
		}
	}
}

func TestRestoreAsOf(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	opts := &Options{Clock: testClock(), PageSize: 1024, CacheFrames: 16, RetainWAL: true, WALSegmentSize: 4096}
	p, err := Open(srcDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := p.CreateTable("acct", TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}
	var marks []Timestamp
	for i := 0; i < 40; i++ {
		commitKV(t, p, tbl, "key"+string(rune('A'+i%5)), string(rune('a'+i%26)))
		marks = append(marks, p.Now())
		if i%13 == 12 {
			if err := p.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Record the expected state at a mid-history mark from the live engine.
	mark := marks[17]
	want := stateAsOf(t, p, tbl, mark)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	if err := RestoreAsOf(srcDir, dstDir, mark, opts); err != nil {
		t.Fatalf("RestoreAsOf: %v", err)
	}
	clone, err := Open(dstDir, opts)
	if err != nil {
		t.Fatalf("open restored clone: %v", err)
	}
	defer clone.Close()
	ctbl, err := clone.Table("acct")
	if err != nil {
		t.Fatal(err)
	}
	got := stateAsOf(t, clone, ctbl, clone.Now())
	if len(got) != len(want) {
		t.Fatalf("restored state %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("restored %s = %q, want %q", k, got[k], v)
		}
	}
	// The clone is a normal writable database.
	if err := clone.Update(func(tx *Tx) error { return tx.Set(ctbl, []byte("new"), []byte("1")) }); err != nil {
		t.Fatalf("write on restored clone: %v", err)
	}

	// Restoring into a non-empty directory is refused.
	if err := RestoreAsOf(srcDir, dstDir, mark, opts); err == nil {
		t.Fatal("restore into non-empty destination should fail")
	}
	// A truncation-managed source is refused with a pointer at RetainWAL.
	trunc := t.TempDir()
	p2, err := Open(trunc, &Options{Clock: testClock(), PageSize: 1024, CacheFrames: 16, WALSegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	tbl2, _ := p2.CreateTable("t", TableOptions{Immortal: true})
	for i := 0; i < 60; i++ {
		commitKV(t, p2, tbl2, "k", "v")
		if i%10 == 9 {
			p2.Checkpoint()
		}
	}
	truncated := p2.Log().FirstRetained() != wal.FirstLSN
	p2.Close()
	if truncated {
		if err := RestoreAsOf(trunc, filepath.Join(t.TempDir(), "d"), marks[0], opts); err == nil {
			t.Fatal("restore from truncated chain should fail")
		}
	}
}
