package immortaldb

// Engine-level promotion: a caught-up replica flips to a read-write primary
// behind a durable epoch fence, a deposed primary's in-flight commits are
// refused rather than acked, promoting twice is a typed no-op, and a
// promoted survivor honors the same isolation contract as a primary that
// never failed over.

import (
	"errors"
	"testing"
	"time"

	"immortaldb/internal/wal"
)

func promoteTestOpts() *Options {
	return &Options{
		Clock:       testClock(),
		PageSize:    1024,
		CacheFrames: 16,
		LockTimeout: 500 * time.Millisecond,
	}
}

// buildReplica opens a primary with a few commits and a fully caught-up
// replica of it.
func buildReplica(t *testing.T) (p, r *DB, tbl *Table, ts1 Timestamp) {
	t.Helper()
	p, err := Open(t.TempDir(), promoteTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	tbl, err = p.CreateTable("acct", TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}
	ts1 = commitKV(t, p, tbl, "alice", "100")
	commitKV(t, p, tbl, "alice", "150")
	commitKV(t, p, tbl, "bob", "50")

	r, err = OpenReplica(t.TempDir(), promoteTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	shipAll(t, p, r)
	return p, r, tbl, ts1
}

func TestPromoteFlipsReplicaToPrimary(t *testing.T) {
	p, r, _, ts1 := buildReplica(t)
	fence := r.Horizon().AppliedLSN

	epoch, err := r.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if epoch != 1 {
		t.Fatalf("first promotion epoch = %d, want 1", epoch)
	}
	if r.IsReplica() {
		t.Fatal("promoted survivor still reports IsReplica")
	}
	if got := r.Epoch(); got != epoch {
		t.Fatalf("Epoch() = %d, want %d", got, epoch)
	}
	if got := r.Horizon().AppliedLSN; got < fence {
		t.Fatalf("fence regressed: applied %d < %d", got, fence)
	}

	// The sealed log refuses further shipped bytes — a late chunk from a
	// retired pull loop must not graft onto the new timeline.
	if ch, err := p.Log().ShipRead(0, 64); err == nil && len(ch.Data) > 0 {
		ch.At = r.Log().End()
		if err := r.Log().IngestChunk(ch); !errors.Is(err, wal.ErrSealed) {
			t.Fatalf("IngestChunk after promotion: %v, want wal.ErrSealed", err)
		}
	}

	// Writes work, replicated history is intact, AS OF still answers.
	rtbl, err := r.Table("acct")
	if err != nil {
		t.Fatal(err)
	}
	commitKV(t, r, rtbl, "alice", "175")
	wantState(t, r, rtbl, ts1, "promoted AS OF first commit", map[string]string{"alice": "100"})
	wantState(t, r, rtbl, r.Now(), "promoted current state",
		map[string]string{"alice": "175", "bob": "50"})

	// DDL works too: the survivor is a full primary.
	if _, err := r.CreateTable("post", TableOptions{}); err != nil {
		t.Fatalf("CreateTable after promotion: %v", err)
	}
}

func TestDoublePromotionRefused(t *testing.T) {
	_, r, _, _ := buildReplica(t)
	if _, err := r.Promote(); err != nil {
		t.Fatalf("first Promote: %v", err)
	}
	epoch := r.Epoch()
	// A supervisor retrying promotion must learn the node already serves
	// writes — a typed no-op, not a second epoch.
	if _, err := r.Promote(); !errors.Is(err, ErrNotReplica) {
		t.Fatalf("second Promote: %v, want ErrNotReplica", err)
	}
	if got := r.Epoch(); got != epoch {
		t.Fatalf("refused promotion moved the epoch: %d -> %d", epoch, got)
	}
	// Promoting a never-replica primary is the same typed no-op.
	p, err := Open(t.TempDir(), promoteTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Promote(); !errors.Is(err, ErrNotReplica) {
		t.Fatalf("Promote on a primary: %v, want ErrNotReplica", err)
	}
}

func TestZombiePrimaryFenced(t *testing.T) {
	p, r, tbl, _ := buildReplica(t)

	// The zombie's commit is in flight — updates applied, commit not yet
	// issued — when the cluster deposes the primary and promotes the
	// survivor.
	zombie, err := p.Begin(Serializable)
	if err != nil {
		t.Fatal(err)
	}
	if err := zombie.Set(tbl, []byte("alice"), []byte("999")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Promote(); err != nil {
		t.Fatalf("Promote survivor: %v", err)
	}
	if err := p.PromoteToFollower(); err != nil {
		t.Fatalf("PromoteToFollower: %v", err)
	}

	// The in-flight commit is refused — never acked — and its updates are
	// rolled back on the deposed node.
	if err := zombie.Commit(); !errors.Is(err, ErrReplica) {
		t.Fatalf("zombie commit: %v, want ErrReplica", err)
	}
	wantState(t, p, tbl, p.Now(), "deposed primary after fence",
		map[string]string{"alice": "150", "bob": "50"})

	// New writes on the deposed node are refused outright.
	tx, err := p.Begin(Serializable)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Set(tbl, []byte("bob"), []byte("0")); !errors.Is(err, ErrReplica) {
		t.Fatalf("write on deposed primary: %v, want ErrReplica", err)
	}
	tx.Rollback()

	// The survivor never saw the zombie write.
	rtbl, err := r.Table("acct")
	if err != nil {
		t.Fatal(err)
	}
	wantState(t, r, rtbl, r.Now(), "survivor after failover",
		map[string]string{"alice": "150", "bob": "50"})

	// Demoting a node that is already a replica is the typed error.
	if err := p.PromoteToFollower(); !errors.Is(err, ErrReplica) {
		t.Fatalf("double demotion: %v, want ErrReplica", err)
	}
}

// TestPromotedSurvivorIsolation runs the full timestamp-based isolation
// checker against a freshly promoted survivor: the concurrent workload, the
// offline history verification, first-committer-wins — everything a
// never-failed-over primary must satisfy, on a primary whose TID and
// timestamp spaces were re-based above a replicated prefix.
func TestPromotedSurvivorIsolation(t *testing.T) {
	_, r, _, _ := buildReplica(t)
	if _, err := r.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	seed := isoSeed()
	t.Logf("seed=%d (override with IMMORTALDB_ISO_SEED)", seed)
	runIsolationCheck(t, r, seed)
}
