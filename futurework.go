package immortaldb

import (
	"errors"
	"fmt"
	"time"

	"immortaldb/internal/itime"
)

// This file implements the "Next Steps" features of the paper's Section 7.2
// that go beyond the measured prototype: CURRENT TIME support and the
// queryable-backup restore path. (The third next step, TSB-tree indexing of
// historical pages, is the IndexTSB mode.)

// ErrTimestampOrder reports that a transaction which fixed its timestamp via
// CurrentTime touched data committed after that timestamp; committing it
// would violate timestamp/serialization agreement, so it must abort.
var ErrTimestampOrder = errors.New("immortaldb: access conflicts with the transaction's already-chosen CURRENT TIME timestamp")

// CurrentTime returns the transaction's timestamp, fixing it now if it was
// not fixed yet — SQL's CURRENT TIME inside a transaction (Section 7.2: the
// request "needs to return a time consistent with the transaction's
// timestamp", which "forces a transaction's timestamp to be chosen earlier
// than its commit time").
//
// After the timestamp is fixed, strict two-phase locking guarantees that
// conflicting transactions either already committed (with smaller
// timestamps) or wait behind this transaction's locks (and get larger ones);
// the one remaining hazard — touching a version that committed after the
// fixed timestamp — is validated on every subsequent read and write, which
// then fail with ErrTimestampOrder (the transaction should roll back).
// CurrentTime is only available in Serializable transactions; AS OF
// transactions simply return their historical read point.
func (tx *Tx) CurrentTime() (time.Time, error) {
	if tx.done {
		return time.Time{}, ErrTxDone
	}
	if tx.mode == asOf {
		return tx.snapTS.Time(), nil
	}
	if tx.mode != Serializable {
		return time.Time{}, fmt.Errorf("immortaldb: CURRENT TIME requires a serializable transaction (have %v)", tx.mode)
	}
	if tx.fixedTS.IsZero() {
		// Reserve the next commit timestamp now. The sequencer moves past
		// it, so later commits get strictly larger timestamps.
		tx.db.commitMu.Lock()
		tx.fixedTS = tx.db.seq.Next()
		tx.db.commitMu.Unlock()
	}
	return tx.fixedTS.Time(), nil
}

// validateFixedTS enforces the CURRENT TIME ordering rule against a version
// timestamp the transaction is about to depend on.
func (tx *Tx) validateFixedTS(ts itime.Timestamp) error {
	if tx.fixedTS.IsZero() || !ts.After(tx.fixedTS) {
		return nil
	}
	return fmt.Errorf("%w: version at %v, transaction fixed at %v", ErrTimestampOrder, ts, tx.fixedTS)
}

// minReservedTS returns the smallest timestamp reserved by an active
// CURRENT TIME transaction, or zero when none is reserved. Time splits must
// not use a boundary beyond it: such a transaction will commit versions
// stamped with its (earlier) reserved time, which must still land inside the
// current page's time range.
func (db *DB) minReservedTS() itime.Timestamp {
	db.mu.Lock()
	defer db.mu.Unlock()
	var min itime.Timestamp
	for _, tx := range db.active {
		if !tx.fixedTS.IsZero() && (min.IsZero() || tx.fixedTS.Less(min)) {
			min = tx.fixedTS
		}
	}
	return min
}

// ExportAsOf materializes the database state as of ts into a fresh database
// at dir — the restore path of the paper's "query-able backup" next step
// (Section 7.2 / [22]): the historical versions double as an always-online,
// incrementally-maintained backup from which any past state can be
// extracted. Only immortal tables are exported (conventional tables have no
// past states to restore). The export carries the state, not the history:
// it is a conventional point-in-time restore.
func (db *DB) ExportAsOf(ts Timestamp, dir string) error {
	out, err := Open(dir, &Options{
		PageSize:    db.opts.PageSize,
		CacheFrames: db.opts.CacheFrames,
		NoSync:      db.opts.NoSync,
		Clock:       db.opts.Clock,
	})
	if err != nil {
		return err
	}
	defer out.Close()

	db.mu.Lock()
	tables := db.cat.List()
	db.mu.Unlock()
	for _, meta := range tables {
		if !meta.Immortal {
			continue
		}
		src, err := db.Table(meta.Name)
		if err != nil {
			return err
		}
		dst, err := out.CreateTable(meta.Name, TableOptions{
			Immortal: true,
			Columns:  meta.Columns,
		})
		if err != nil {
			return err
		}
		srcTx, err := db.BeginAsOfTS(ts)
		if err != nil {
			return err
		}
		dstTx, err := out.Begin(Serializable)
		if err != nil {
			srcTx.Commit()
			return err
		}
		var copyErr error
		err = srcTx.Scan(src, nil, nil, func(k, v []byte) bool {
			if copyErr = dstTx.Set(dst, k, v); copyErr != nil {
				return false
			}
			return true
		})
		srcTx.Commit()
		if err == nil {
			err = copyErr
		}
		if err != nil {
			dstTx.Rollback()
			return fmt.Errorf("immortaldb: export of %s: %w", meta.Name, err)
		}
		if err := dstTx.Commit(); err != nil {
			return err
		}
	}
	return nil
}
