package immortaldb

// Tiered history storage: migration of cold TSB history pages into the
// compressed immutable run files of internal/hist, plus the background
// compactor that merges small runs into larger levels.
//
// One migration pass per table follows a strict order so that a crash at any
// point loses nothing and duplicates nothing observable:
//
//  1. CollectCold (shared lock) extracts the versions of migratable history
//     pages.
//  2. Per run chunk: a TypeHistRun record is appended (redo idempotence and
//     replica visibility), then the run file is written and fsynced — the
//     file is the durability authority.
//  3. The staged manifest (Ver+1) is appended as TypeHistManifest, the log
//     is flushed to it, and the dual-slot manifest install flips the cold
//     tier to the new run set. From here the migrated versions are served
//     cold.
//  4. CutCold (exclusive lock) severs every chain edge into the victims,
//     one logged SMO per cut page; the log is flushed to the last cut.
//  5. The victim pages are dropped from the buffer pool and freed.
//
// A crash between 3 and 4 leaves versions reachable both through the chain
// and the manifest — benign, because the read path consults the cold tier
// only when a chain ends, so chain-reachable versions are never also asked
// of cold, and a re-migration's duplicate cold entries are (key, TS)-deduped
// at read and compaction time. A crash between 4 and 5 leaks pages until the
// next pass. Any I/O failure latches the engine read-only-degraded; the cold
// tier already installed stays readable.

import (
	"errors"
	"fmt"
	"time"

	"immortaldb/internal/hist"
	"immortaldb/internal/itime"
	"immortaldb/internal/obs"
	"immortaldb/internal/storage/page"
	"immortaldb/internal/tsb"
	"immortaldb/internal/wal"
)

const (
	// histRunTarget caps one run file's (approximate, pre-compression) size.
	histRunTarget = 4 << 20
	// histFanout is the number of same-level runs that triggers a merge into
	// the next level.
	histFanout = 4
)

// ErrTieredOff reports CompactHistory on a database opened without
// Options.TieredHistory.
var ErrTieredOff = errors.New("immortaldb: TieredHistory not enabled")

var obsHistCompactLatency = obs.NewHistogram("hist_compaction_seconds",
	"Latency of full CompactHistory passes.", obs.LatencyBuckets)

// treeHist adapts the engine's hist.Store to one tree's tsb.HistStore view.
type treeHist struct {
	db      *DB
	tableID uint32
}

func coldVersion(v hist.Version) tsb.ColdVersion {
	return tsb.ColdVersion{Value: v.Value, TS: v.TS, Stub: v.Stub}
}

func (h *treeHist) Lookup(key []byte, ts itime.Timestamp) (tsb.ColdVersion, bool, error) {
	v, ok, err := h.db.hist.Lookup(h.tableID, key, ts)
	return coldVersion(v), ok, err
}

func (h *treeHist) Newest(key []byte) (tsb.ColdVersion, bool, error) {
	v, ok, err := h.db.hist.Newest(h.tableID, key)
	return coldVersion(v), ok, err
}

func (h *treeHist) KeyHistory(key []byte) ([]tsb.ColdVersion, error) {
	vs, err := h.db.hist.KeyHistory(h.tableID, key)
	if err != nil {
		return nil, err
	}
	out := make([]tsb.ColdVersion, len(vs))
	for i, v := range vs {
		out[i] = coldVersion(v)
	}
	return out, nil
}

func (h *treeHist) ScanAsOf(lo, hi []byte, ts itime.Timestamp, fn func(key []byte, v tsb.ColdVersion) bool) error {
	return h.db.hist.ScanAsOf(h.tableID, lo, hi, ts, func(key []byte, v hist.Version) bool {
		return fn(key, coldVersion(v))
	})
}

// kickCompactor nudges the background compactor after a time split. Called
// inside the tree's writer section, so it must never block.
func (db *DB) kickCompactor() {
	if db.histKick == nil {
		return
	}
	select {
	case db.histKick <- struct{}{}:
	default:
	}
}

// compactorLoop runs CompactHistory on a timer and on time-split kicks until
// stopped. Any error parks the loop: ErrDegraded and shutdown errors are
// permanent in-process, and an unexpected failure already latched the engine
// degraded inside CompactHistory.
func (db *DB) compactorLoop(every time.Duration) {
	defer close(db.histDone)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-db.histStop:
			return
		case <-ticker.C:
		case <-db.histKick:
		}
		if err := db.CompactHistory(); err != nil {
			return
		}
	}
}

// stopCompactor parks the background compactor and waits for it to exit.
// Safe to call multiple times and when no compactor was started.
func (db *DB) stopCompactor() {
	if db.histStop == nil {
		return
	}
	db.histStopOnce.Do(func() { close(db.histStop) })
	<-db.histDone
}

// VacuumStats reports what one VacuumHistory pass reclaimed.
type VacuumStats struct {
	// VersionsReclaimed counts historical versions dropped by retention
	// vacuuming and merge deduplication.
	VersionsReclaimed uint64
	// BytesReclaimed is the net shrink of the cold tier's run files: bytes
	// of merged-away inputs minus bytes of their replacement runs.
	BytesReclaimed uint64
	// PagesMigrated counts hot history pages moved into cold runs.
	PagesMigrated uint64
	// RunsMerged counts run files consumed by merges.
	RunsMerged uint64
}

// VacuumHistory checkpoints (stamping history pages so they become
// migratable) and runs one synchronous cold-tier pass, returning what it
// reclaimed. It is the engine behind the VACUUM HISTORY statement; the
// background compactor does the same work on its ticks without the
// accounting.
func (db *DB) VacuumHistory() (VacuumStats, error) {
	if db.replica.Load() {
		return VacuumStats{}, ErrReplica
	}
	if !db.opts.TieredHistory {
		return VacuumStats{}, ErrTieredOff
	}
	if err := db.Checkpoint(); err != nil {
		return VacuumStats{}, err
	}
	return db.vacuumHistory(true)
}

// CompactHistory runs one full cold-tier pass over every immortal
// chain-indexed table: migratable history pages move into new run files, and
// levels holding histFanout or more runs merge into the next level, vacuuming
// versions behind the Options.Retention horizon. It is what the background
// compactor calls on its ticks; tests and operators call it directly for
// deterministic behaviour. Serialized: concurrent calls queue.
func (db *DB) CompactHistory() error {
	if db.replica.Load() {
		return ErrReplica
	}
	if !db.opts.TieredHistory {
		return ErrTieredOff
	}
	_, err := db.vacuumHistory(false)
	return err
}

// vacuumHistory is the shared pass body; with collect set it wires a
// VacuumStats into db.histPass (under histMu) for migrateCold and mergeRuns
// to fill.
func (db *DB) vacuumHistory(collect bool) (VacuumStats, error) {
	var stats VacuumStats
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return stats, ErrClosed
	}
	if db.draining {
		db.mu.Unlock()
		return stats, ErrShuttingDown
	}
	type target struct {
		tid  uint32
		tree *tsb.Tree
	}
	var targets []target
	for _, t := range db.cat.List() {
		if t.Immortal {
			if tr := db.trees[t.ID]; tr != nil {
				targets = append(targets, target{t.ID, tr})
			}
		}
	}
	db.opCount++
	db.mu.Unlock()
	defer db.opExit()
	if err := db.Degraded(); err != nil {
		return stats, err
	}
	db.histMu.Lock()
	defer db.histMu.Unlock()
	if collect {
		db.histPass = &stats
		defer func() { db.histPass = nil }()
	}
	start := obs.Now()
	for _, tgt := range targets {
		if err := db.migrateCold(tgt.tid, tgt.tree); err != nil {
			db.degradeIf(err)
			return stats, err
		}
		if err := db.compactRuns(tgt.tid); err != nil {
			db.degradeIf(err)
			return stats, err
		}
	}
	db.histCompactions.Add(1)
	obsHistCompactLatency.ObserveSince(start)
	return stats, nil
}

// histChunks splits sorted entries into run-sized chunks by an approximate
// uncompressed byte estimate.
func histChunks(entries []hist.Entry) [][]hist.Entry {
	var chunks [][]hist.Entry
	var cur []hist.Entry
	bytes := 0
	for _, e := range entries {
		sz := len(e.Key) + len(e.Value) + 20
		if bytes+sz > histRunTarget && len(cur) > 0 {
			chunks = append(chunks, cur)
			cur, bytes = nil, 0
		}
		cur = append(cur, e)
		bytes += sz
	}
	if len(cur) > 0 {
		chunks = append(chunks, cur)
	}
	return chunks
}

// writeRuns encodes chunks as level-`level` runs, appends their WAL records,
// writes and fsyncs the files, and stages them into m (advancing NextSeq).
func (db *DB) writeRuns(tid uint32, m *hist.Manifest, level uint8, chunks [][]hist.Entry) error {
	for _, chunk := range chunks {
		seq := m.NextSeq
		if seq == 0 {
			seq = 1
		}
		data, meta, err := hist.EncodeRun(tid, seq, level, chunk)
		if err != nil {
			return err
		}
		if _, err := db.log.Append(&wal.Record{
			Type: wal.TypeHistRun, Table: tid, Page: page.ID(seq), Blob: data,
		}); err != nil {
			return err
		}
		if err := db.hist.WriteRun(tid, seq, data); err != nil {
			return err
		}
		m.Runs = append(m.Runs, meta)
		m.NextSeq = seq + 1
	}
	return nil
}

// installManifest makes the staged manifest the table's current one: WAL
// record, flush, dual-slot install.
func (db *DB) installManifest(tid uint32, m hist.Manifest) error {
	lsn, err := db.log.Append(&wal.Record{
		Type: wal.TypeHistManifest, Table: tid, Blob: hist.EncodeManifest(m),
	})
	if err != nil {
		return err
	}
	if err := db.log.FlushTo(lsn); err != nil {
		return err
	}
	return db.hist.Install(tid, m)
}

// migrateCold moves every migratable history page of one tree into new
// level-0 runs and frees the pages. See the file comment for the ordering.
func (db *DB) migrateCold(tid uint32, tree *tsb.Tree) error {
	victims, cold, err := tree.CollectCold()
	if err != nil {
		return err
	}
	if len(victims) == 0 {
		return nil
	}
	if len(cold) > 0 {
		entries := make([]hist.Entry, len(cold))
		for i, e := range cold {
			entries[i] = hist.Entry{Key: e.Key, Value: e.Value, TS: e.TS, Stub: e.Stub}
		}
		m := db.hist.Manifest(tid)
		m.TableID = tid
		if m.NextSeq == 0 {
			m.NextSeq = 1
		}
		if err := db.writeRuns(tid, &m, 0, histChunks(entries)); err != nil {
			return err
		}
		m.Ver++
		if err := db.installManifest(tid, m); err != nil {
			return err
		}
	}
	cutLSN, err := tree.CutCold(victims)
	if err != nil {
		return err
	}
	if cutLSN != 0 {
		if err := db.log.FlushTo(wal.LSN(cutLSN)); err != nil {
			return err
		}
	}
	// With the cuts durable, the victims are unreachable from any chain and
	// safe to free. Strict order — flush, then drop from the pool, then free —
	// means a crash can at worst leak a page until redo replays the SMOs.
	for _, id := range victims {
		if err := db.pool.Drop(id); err != nil {
			return err
		}
		if err := db.pager.Free(id); err != nil {
			return err
		}
	}
	db.pagesMigrated.Add(uint64(len(victims)))
	if db.histPass != nil {
		db.histPass.PagesMigrated += uint64(len(victims))
	}
	return nil
}

// retentionHorizon computes the vacuum horizon for Options.Retention,
// clamped so versions an active snapshot may still read are never dropped.
// Zero means keep everything.
func (db *DB) retentionHorizon() itime.Timestamp {
	if db.opts.Retention <= 0 {
		return itime.Timestamp{}
	}
	ticks := int64(db.opts.Retention / itime.TickDuration)
	wall := db.opts.Clock.NowTick() - ticks
	if wall <= 0 {
		return itime.Timestamp{}
	}
	h := itime.Timestamp{Wall: wall, Seq: ^uint32(0)}
	if sh := db.snapshotHorizon(); !sh.IsZero() && sh.Less(h) {
		h = sh
	}
	return h
}

// compactRuns repeatedly merges the lowest level holding histFanout or more
// runs into one (or more) next-level runs until no level is that wide, then —
// with a retention horizon set — runs a whole-table sweep so expired versions
// are vacuumed even when no fanout merge triggers. Each merge is its own
// manifest flip, so a crash mid-way loses at most the in-progress merge's
// work, never installed state.
func (db *DB) compactRuns(tid uint32) error {
	horizon := db.retentionHorizon()
	for {
		m := db.hist.Manifest(tid)
		if m.Ver == 0 {
			return nil
		}
		byLevel := map[uint8][]hist.RunMeta{}
		for _, r := range m.Runs {
			byLevel[r.Level] = append(byLevel[r.Level], r)
		}
		level, found := uint8(0), false
		for l := 0; l < 256; l++ {
			if len(byLevel[uint8(l)]) >= histFanout {
				level, found = uint8(l), true
				break
			}
		}
		if !found {
			break
		}
		if err := db.mergeRuns(tid, m, byLevel[level], level+1, horizon, true); err != nil {
			return err
		}
	}
	if horizon.IsZero() {
		return nil
	}
	// Retention sweep: merge the whole table once when some run still holds
	// versions that might be behind the horizon. mergeRuns skips the rewrite
	// when nothing would actually drop, so a no-progress sweep costs reads
	// but no writes.
	m := db.hist.Manifest(tid)
	if m.Ver == 0 || len(m.Runs) == 0 {
		return nil
	}
	sweep := false
	maxLevel := uint8(0)
	for _, r := range m.Runs {
		if r.MinTS.Less(horizon) {
			sweep = true
		}
		if r.Level > maxLevel {
			maxLevel = r.Level
		}
	}
	if !sweep {
		return nil
	}
	return db.mergeRuns(tid, m, m.Runs, maxLevel+1, horizon, false)
}

// mergeRuns merges group (a subset of m.Runs) into new runs at outLevel,
// vacuuming behind horizon. Delete-stub anchors are dropped only when the
// group covers every run of the table — a partial merge keeping them is what
// prevents an older version in an unmerged run from resurfacing. Unless
// force is set (fanout merges, where consolidation is the point), a merge
// that would not shrink the entry count skips the rewrite: retention sweeps
// then cost reads but never churn writes.
func (db *DB) mergeRuns(tid uint32, m hist.Manifest, group []hist.RunMeta, outLevel uint8, horizon itime.Timestamp, force bool) error {
	old := make(map[uint64]bool, len(group))
	oldSeqs := make([]uint64, 0, len(group))
	var merged []hist.Entry
	inCount := 0
	for _, rm := range group {
		es, err := db.hist.RunEntries(tid, rm.Seq)
		if err != nil {
			return err
		}
		merged = append(merged, es...)
		inCount += len(es)
		old[rm.Seq] = true
		oldSeqs = append(oldSeqs, rm.Seq)
	}
	if len(group) == len(m.Runs) {
		merged = hist.Compact(merged, horizon)
	} else {
		merged = hist.CompactPartial(merged, horizon)
	}
	if len(merged) == inCount && !force {
		return nil // nothing to vacuum
	}
	next := hist.Manifest{Ver: m.Ver, TableID: tid, NextSeq: m.NextSeq}
	for _, r := range m.Runs {
		if !old[r.Seq] {
			next.Runs = append(next.Runs, r)
		}
	}
	// Retention can vacuum a whole group away; the manifest then simply
	// drops it.
	kept := len(next.Runs)
	if len(merged) > 0 {
		if err := db.writeRuns(tid, &next, outLevel, histChunks(merged)); err != nil {
			return err
		}
	}
	next.Ver++
	if err := db.installManifest(tid, next); err != nil {
		return err
	}
	if db.histPass != nil {
		db.histPass.RunsMerged += uint64(len(group))
		if d := inCount - len(merged); d > 0 {
			db.histPass.VersionsReclaimed += uint64(d)
		}
		var oldBytes, newBytes uint64
		for _, rm := range group {
			oldBytes += rm.Bytes
		}
		for _, rm := range next.Runs[kept:] {
			newBytes += rm.Bytes
		}
		if oldBytes > newBytes {
			db.histPass.BytesReclaimed += oldBytes - newBytes
		}
	}
	// The installed manifest no longer references the merged inputs; a
	// failure removing them is still an I/O fault worth degrading on (the
	// caller does), but the tier itself stays consistent.
	if err := db.hist.RemoveRuns(tid, oldSeqs); err != nil {
		return fmt.Errorf("reclaim merged runs: %w", err)
	}
	return nil
}
