package immortaldb

import (
	"errors"
	"fmt"
	"sort"

	"immortaldb/internal/itime"
	"immortaldb/internal/storage/disk"
	"immortaldb/internal/storage/page"
	"immortaldb/internal/tsb"
	"immortaldb/internal/wal"
)

// redoApplier applies the tree-level redo record types — page images,
// structure modifications, catalog snapshots, version inserts, CLRs, eager
// stamps. Crash recovery and a replica's continuous redo share it; the
// difference is concurrency. Recovery runs single-threaded against a closed
// engine, so installs need no locks. Live replica redo runs while the engine
// serves snapshot and AS OF reads, so every multi-page install (an SMO, a
// full-page image) happens under the affected tree's writer lock — a reader
// sees a split fully applied or not at all, never half.
type redoApplier struct {
	db   *DB
	live bool
	// trees is the recovery-mode lazy cache, adopted into db.trees once the
	// scan finishes. Live mode uses db.trees directly (via db.treeByID).
	trees map[uint32]*tsb.Tree
}

func newRecoveryApplier(db *DB) *redoApplier {
	return &redoApplier{db: db, trees: make(map[uint32]*tsb.Tree)}
}

func newLiveApplier(db *DB) *redoApplier {
	return &redoApplier{db: db, live: true}
}

// tornOK filters page-damage errors during redo. With full-page-writes on, a
// logical redo record can land on a page whose last in-place write was torn
// by the crash (checksum failure) or never became durable at all (short
// file). The write that damaged the page logged a later image of it first —
// an image whose LSN covers this record and which, because the damaged write
// was never followed by an fsync (and hence no checkpoint completed after
// it), lies at or after the redo scan start. Skipping the record is
// therefore safe: the image record later in this same scan rebuilds the page
// with the record's effect already applied. Without full-page-writes no such
// image exists and a damaged page is a real recovery failure, reported
// loudly.
func (a *redoApplier) tornOK(err error) error {
	if err == nil {
		return nil
	}
	if a.db.opts.FullPageWrites &&
		(errors.Is(err, disk.ErrChecksum) || errors.Is(err, disk.ErrOutOfFile)) {
		return nil
	}
	return err
}

func (a *redoApplier) treeFor(tableID uint32) (*tsb.Tree, error) {
	if a.live {
		if t := a.db.treeByID(tableID); t != nil {
			return t, nil
		}
		return nil, fmt.Errorf("redo references unknown table %d", tableID)
	}
	if t, ok := a.trees[tableID]; ok {
		return t, nil
	}
	meta, ok := a.db.cat.ByID(tableID)
	if !ok {
		return nil, fmt.Errorf("redo references unknown table %d", tableID)
	}
	t := a.db.openTree(meta)
	a.trees[tableID] = t
	return t, nil
}

// reloadCatalog installs a logged catalog snapshot and repositions the roots
// of already-open trees, except the one with ID skip (0: none) — a live SMO
// install applies that tree's root move inside its exclusive section instead.
func (a *redoApplier) reloadCatalog(blob []byte, skip uint32) error {
	db := a.db
	if err := db.cat.Load(blob); err != nil {
		return err
	}
	reposition := func(id uint32, t *tsb.Tree) {
		if id == skip {
			return
		}
		if meta, ok := db.cat.ByID(id); ok {
			t.SetRoot(meta.Root, meta.RootIsLeaf)
		}
	}
	if a.live {
		db.mu.Lock()
		open := make(map[uint32]*tsb.Tree, len(db.trees))
		for id, t := range db.trees {
			open[id] = t
		}
		db.mu.Unlock()
		for id, t := range open {
			reposition(id, t)
		}
		return nil
	}
	for id, t := range a.trees {
		reposition(id, t)
	}
	return nil
}

// applySMO installs one structure modification: every page image of the
// record and, when it carries a catalog snapshot, the root move. In live
// mode the affected tree's writer lock spans all of it.
func (a *redoApplier) applySMO(rec *wal.Record) error {
	db := a.db
	install := func() error {
		for i := range rec.Images {
			if err := db.redoImage(rec.Images[i].Page, rec.Images[i].Img, rec.LSN); err != nil {
				return err
			}
		}
		return nil
	}
	if !a.live {
		// Recovery: no concurrent readers, install directly.
		if err := install(); err != nil {
			return err
		}
		if len(rec.Blob) > 0 {
			return a.reloadCatalog(rec.Blob, 0)
		}
		return nil
	}
	var rc *tsb.RootChange
	if len(rec.Blob) > 0 {
		// Load the catalog first so a brand-new table (a create's initial
		// SMO precedes its catalog record) is resolvable, but defer this
		// table's root move into the exclusive section below.
		if err := a.reloadCatalog(rec.Blob, rec.Table); err != nil {
			return err
		}
		if meta, ok := db.cat.ByID(rec.Table); ok {
			rc = &tsb.RootChange{Root: meta.Root, IsLeaf: meta.RootIsLeaf}
		}
	}
	t, err := a.treeFor(rec.Table)
	if err != nil {
		return err
	}
	return t.ApplyExclusive(install, rc)
}

// applyImage installs a full-page image (FullPageWrites on the primary).
// The record carries no table, so live mode excludes readers of every tree.
func (a *redoApplier) applyImage(rec *wal.Record) error {
	if !a.live {
		return a.db.redoImage(rec.Page, rec.Img, rec.LSN)
	}
	return a.db.withAllTreesExclusive(func() error {
		return a.db.redoImage(rec.Page, rec.Img, rec.LSN)
	})
}

// apply dispatches one tree-level redo record. Transaction bookkeeping
// (commit, abort, checkpoint records) stays with the caller: recovery and
// replica redo differ exactly there.
func (a *redoApplier) apply(rec *wal.Record) error {
	db := a.db
	switch rec.Type {
	case wal.TypePageImage:
		return a.applyImage(rec)
	case wal.TypeSMO:
		// Every image of one structure modification shares this record —
		// and its LSN — so a torn tail replays the whole split or none
		// of it, never a shrunk leaf without the sibling and parent (or
		// root change) that route to its moved keys.
		return a.applySMO(rec)
	case wal.TypeCatalog:
		return a.reloadCatalog(rec.Blob, 0)
	case wal.TypeInsertVersion:
		meta, ok := db.cat.ByID(rec.Table)
		if !ok {
			return fmt.Errorf("redo references unknown table %d", rec.Table)
		}
		t, err := a.treeFor(rec.Table)
		if err != nil {
			return err
		}
		if meta.Versioned() {
			return a.tornOK(t.ApplyInsertRedo(rec.Page, rec.TID, rec.Key, rec.Value, rec.Stub, uint64(rec.LSN)))
		}
		return a.tornOK(t.ApplyNoTailRedo(rec.Page, rec.Key, rec.Value, rec.Stub, uint64(rec.LSN)))
	case wal.TypeCLR:
		meta, ok := db.cat.ByID(rec.Table)
		if !ok {
			return fmt.Errorf("redo references unknown table %d", rec.Table)
		}
		t, err := a.treeFor(rec.Table)
		if err != nil {
			return err
		}
		if meta.Versioned() {
			if rec.Restore {
				return a.tornOK(t.ApplyRestoreOwnRedo(rec.Page, rec.TID, rec.Key, rec.Value, rec.Stub, uint64(rec.LSN)))
			}
			return a.tornOK(t.ApplyUndoRedo(rec.Page, rec.TID, rec.Key, uint64(rec.LSN)))
		}
		// Conventional-table compensation: restore or remove.
		if rec.Stub {
			return a.tornOK(t.ApplyNoTailRedo(rec.Page, rec.Key, nil, true, uint64(rec.LSN)))
		}
		return a.tornOK(t.ApplyNoTailRedo(rec.Page, rec.Key, rec.Value, false, uint64(rec.LSN)))
	case wal.TypeStamp:
		t, err := a.treeFor(rec.Table)
		if err != nil {
			return err
		}
		return a.tornOK(t.ApplyStampRedo(rec.Page, rec.Key, rec.TID, rec.TS, uint64(rec.LSN)))
	case wal.TypeHistRun:
		// Rewrite the run file; the engine fsynced it before the manifest
		// flip, so this is usually a no-op rewrite of identical bytes, and
		// for replicas it is how run files arrive at all.
		return db.hist.ApplyRunRecord(rec.Table, uint64(rec.Page), rec.Blob)
	case wal.TypeHistManifest:
		// Install the carried manifest if newer than the one on disk. Stale
		// replays (redo behind the file state) are no-ops.
		return db.hist.ApplyManifestRecord(rec.Table, rec.Blob)
	}
	return nil
}

// withAllTreesExclusive runs fn holding every open tree's writer lock, in
// table-ID order — live apply of a record that names no table.
func (db *DB) withAllTreesExclusive(fn func() error) error {
	db.mu.Lock()
	ids := make([]uint32, 0, len(db.trees))
	for id := range db.trees {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	trees := make([]*tsb.Tree, len(ids))
	for i, id := range ids {
		trees[i] = db.trees[id]
	}
	db.mu.Unlock()
	var run func(i int) error
	run = func(i int) error {
		if i == len(trees) {
			return fn()
		}
		return trees[i].Exclusive(func() error { return run(i + 1) })
	}
	return run(0)
}

// recover brings the database to a consistent state after open: ARIES-style
// analysis, redo, and undo over the write-ahead log.
//
// Two Immortal DB specifics (Section 2.2) shape the redo pass:
//
//   - Commit records carry the transaction timestamp, so the Persistent
//     Timestamp Table entry is re-created if the crash lost it — lazy
//     timestamping itself was never logged and simply re-runs after restart.
//   - Volatile reference counts are gone; restored entries get an undefined
//     count and are never garbage collected ("we simply end up with certain
//     PTT entries that cannot be deleted" — the accepted cost).
//
// On a replica (db.replica) the undo pass is skipped entirely: transactions
// still open at the scan's end are the primary's in-flight writers, whose
// fates arrive with the rest of the shipped stream — and a replica never
// appends to its log copy.
func (db *DB) recover() error {
	ckptLSN := db.log.Checkpoint()
	var ck *wal.Checkpoint
	if ckptLSN != 0 {
		rec, err := db.log.ReadAt(ckptLSN)
		if err != nil {
			return fmt.Errorf("read checkpoint: %w", err)
		}
		ck, err = wal.UnmarshalCheckpoint(rec.Blob)
		if err != nil {
			return err
		}
		db.tids.Bump(ck.NextTID - 1)
		db.seq.Reset(ck.LastTS)
		db.epoch.Store(ck.Epoch)
	}

	// --- Analysis + Redo in one forward pass ---
	redoStart := wal.FirstLSN
	att := make(map[itime.TID]wal.LSN) // active transactions -> last LSN
	if ck != nil {
		redoStart = ck.RedoScanStart(ckptLSN)
		for _, t := range ck.ActiveTxns {
			att[t.TID] = t.LastLSN
		}
	}

	a := newRecoveryApplier(db)
	err := db.log.Scan(redoStart, func(rec *wal.Record) error {
		if rec.TID != 0 {
			att[rec.TID] = rec.LSN
			db.tids.Bump(rec.TID)
		}
		switch rec.Type {
		case wal.TypeCommit:
			delete(att, rec.TID)
			db.seq.Reset(rec.TS)
			return db.stamp.RestoreCommitted(rec.TID, rec.TS, rec.HasTT)
		case wal.TypeAbort:
			delete(att, rec.TID)
			return nil
		case wal.TypeCheckpoint:
			return nil
		case wal.TypePromote:
			// Restore the promotion epoch; the forward scan makes the newest
			// record win. Page state is untouched — the record exists to fence
			// the deposed primary's TID/LSN space, not to change data.
			db.epoch.Store(rec.Epoch)
			return nil
		default:
			return a.apply(rec)
		}
	})
	if err != nil {
		return err
	}

	// Adopt the redo trees so undo (and later opens) share them.
	db.mu.Lock()
	for id, t := range a.trees {
		db.trees[id] = t
	}
	db.mu.Unlock()

	if db.replica.Load() {
		// Replica: continuous redo resumes where this scan ended.
		db.appliedLSN.Store(uint64(db.log.End()))
		return nil
	}

	// --- Undo losers ---
	// Undo in TID order: rollback appends CLRs and may evict pages, so the
	// I/O it causes must be a deterministic function of the log contents for
	// crash-matrix replay.
	losers := make([]itime.TID, 0, len(att))
	for tid := range att {
		losers = append(losers, tid)
	}
	sort.Slice(losers, func(i, j int) bool { return losers[i] < losers[j] })
	for _, tid := range losers {
		lastLSN := att[tid]
		if err := db.undoTx(tid, lastLSN); err != nil {
			return fmt.Errorf("undo of transaction %d: %w", tid, err)
		}
		if _, err := db.log.Append(&wal.Record{Type: wal.TypeAbort, TID: tid, PrevLSN: lastLSN}); err != nil {
			return err
		}
	}
	return db.log.Flush()
}

// redoImage installs a logged page after-image if the on-disk page has not
// yet seen it. Pages allocated after the last durable allocator state are
// re-extended first.
func (db *DB) redoImage(id page.ID, image []byte, lsn wal.LSN) error {
	// Make the page addressable: allocations lost in the crash re-extend the
	// file here.
	for page.ID(db.pager.NumPages()) <= id {
		if _, err := db.pager.Allocate(); err != nil {
			return err
		}
	}
	// Compare LSNs. A page that never reached disk (or is torn) just takes
	// the image.
	cur, err := db.pager.ReadPage(id)
	if err == nil {
		if cl, ok := imageLSN(cur); ok && cl >= uint64(lsn) {
			return nil
		}
	} else if !errors.Is(err, disk.ErrChecksum) && !errors.Is(err, disk.ErrOutOfFile) {
		return err
	}
	// Drop any stale cached copy, then write the image through.
	if err := db.pool.Drop(id); err != nil {
		return err
	}
	img := make([]byte, db.pager.PageSize())
	copy(img, image)
	return db.pager.WritePage(id, img)
}

// imageLSN extracts the page LSN from a raw page image.
func imageLSN(buf []byte) (uint64, bool) {
	switch page.TypeOf(buf) {
	case page.TypeData:
		p, err := page.UnmarshalData(buf)
		if err != nil {
			return 0, false
		}
		return p.LSN, true
	case page.TypeIndex:
		p, err := page.UnmarshalIndex(buf)
		if err != nil {
			return 0, false
		}
		return p.LSN, true
	default:
		return 0, false
	}
}
