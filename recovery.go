package immortaldb

import (
	"errors"
	"fmt"
	"sort"

	"immortaldb/internal/itime"
	"immortaldb/internal/storage/disk"
	"immortaldb/internal/storage/page"
	"immortaldb/internal/tsb"
	"immortaldb/internal/wal"
)

// recover brings the database to a consistent state after open: ARIES-style
// analysis, redo, and undo over the write-ahead log.
//
// Two Immortal DB specifics (Section 2.2) shape the redo pass:
//
//   - Commit records carry the transaction timestamp, so the Persistent
//     Timestamp Table entry is re-created if the crash lost it — lazy
//     timestamping itself was never logged and simply re-runs after restart.
//   - Volatile reference counts are gone; restored entries get an undefined
//     count and are never garbage collected ("we simply end up with certain
//     PTT entries that cannot be deleted" — the accepted cost).
func (db *DB) recover() error {
	ckptLSN := db.log.Checkpoint()
	var ck *wal.Checkpoint
	if ckptLSN != 0 {
		rec, err := db.log.ReadAt(ckptLSN)
		if err != nil {
			return fmt.Errorf("read checkpoint: %w", err)
		}
		ck, err = wal.UnmarshalCheckpoint(rec.Blob)
		if err != nil {
			return err
		}
		db.tids.Bump(ck.NextTID - 1)
		db.seq.Reset(ck.LastTS)
	}

	// --- Analysis + Redo in one forward pass ---
	redoStart := wal.FirstLSN
	att := make(map[itime.TID]wal.LSN) // active transactions -> last LSN
	if ck != nil {
		redoStart = ck.RedoScanStart(ckptLSN)
		for _, t := range ck.ActiveTxns {
			att[t.TID] = t.LastLSN
		}
	}

	// With full-page-writes on, a logical redo record can land on a page
	// whose last in-place write was torn by the crash (checksum failure) or
	// never became durable at all (short file). The write that damaged the
	// page logged a later image of it first — an image whose LSN covers this
	// record and which, because the damaged write was never followed by an
	// fsync (and hence no checkpoint completed after it), lies at or after
	// the redo scan start. Skipping the record is therefore safe: the image
	// record later in this same scan rebuilds the page with the record's
	// effect already applied. Without full-page-writes no such image exists
	// and a damaged page is a real recovery failure, reported loudly.
	tornOK := func(err error) error {
		if err == nil {
			return nil
		}
		if db.opts.FullPageWrites &&
			(errors.Is(err, disk.ErrChecksum) || errors.Is(err, disk.ErrOutOfFile)) {
			return nil
		}
		return err
	}

	// Trees open lazily during redo as catalog records appear; start from
	// the catalog already loaded from the pager meta.
	redoTrees := make(map[uint32]*tsb.Tree)
	treeFor := func(tableID uint32) (*tsb.Tree, error) {
		if t, ok := redoTrees[tableID]; ok {
			return t, nil
		}
		meta, ok := db.cat.ByID(tableID)
		if !ok {
			return nil, fmt.Errorf("redo references unknown table %d", tableID)
		}
		t := db.openTree(meta)
		redoTrees[tableID] = t
		return t, nil
	}

	reloadCatalog := func(blob []byte) error {
		if err := db.cat.Load(blob); err != nil {
			return err
		}
		// Root pointers may have moved; reposition already-open trees.
		for id, t := range redoTrees {
			if meta, ok := db.cat.ByID(id); ok {
				t.SetRoot(meta.Root, meta.RootIsLeaf)
			}
		}
		return nil
	}

	err := db.log.Scan(redoStart, func(rec *wal.Record) error {
		if rec.TID != 0 {
			att[rec.TID] = rec.LSN
			db.tids.Bump(rec.TID)
		}
		switch rec.Type {
		case wal.TypePageImage:
			if err := db.redoImage(rec.Page, rec.Img, rec.LSN); err != nil {
				return err
			}
		case wal.TypeSMO:
			// Every image of one structure modification shares this record —
			// and its LSN — so a torn tail replays the whole split or none
			// of it, never a shrunk leaf without the sibling and parent (or
			// root change) that route to its moved keys.
			for i := range rec.Images {
				if err := db.redoImage(rec.Images[i].Page, rec.Images[i].Img, rec.LSN); err != nil {
					return err
				}
			}
			if len(rec.Blob) > 0 {
				if err := reloadCatalog(rec.Blob); err != nil {
					return err
				}
			}
		case wal.TypeCatalog:
			if err := reloadCatalog(rec.Blob); err != nil {
				return err
			}
		case wal.TypeInsertVersion:
			meta, ok := db.cat.ByID(rec.Table)
			if !ok {
				return fmt.Errorf("redo references unknown table %d", rec.Table)
			}
			t, err := treeFor(rec.Table)
			if err != nil {
				return err
			}
			if meta.Versioned() {
				return tornOK(t.ApplyInsertRedo(rec.Page, rec.TID, rec.Key, rec.Value, rec.Stub, uint64(rec.LSN)))
			}
			return tornOK(t.ApplyNoTailRedo(rec.Page, rec.Key, rec.Value, rec.Stub, uint64(rec.LSN)))
		case wal.TypeCLR:
			meta, ok := db.cat.ByID(rec.Table)
			if !ok {
				return fmt.Errorf("redo references unknown table %d", rec.Table)
			}
			t, err := treeFor(rec.Table)
			if err != nil {
				return err
			}
			if meta.Versioned() {
				if rec.Restore {
					return tornOK(t.ApplyRestoreOwnRedo(rec.Page, rec.TID, rec.Key, rec.Value, rec.Stub, uint64(rec.LSN)))
				}
				return tornOK(t.ApplyUndoRedo(rec.Page, rec.TID, rec.Key, uint64(rec.LSN)))
			}
			// Conventional-table compensation: restore or remove.
			if rec.Stub {
				return tornOK(t.ApplyNoTailRedo(rec.Page, rec.Key, nil, true, uint64(rec.LSN)))
			}
			return tornOK(t.ApplyNoTailRedo(rec.Page, rec.Key, rec.Value, false, uint64(rec.LSN)))
		case wal.TypeStamp:
			t, err := treeFor(rec.Table)
			if err != nil {
				return err
			}
			return tornOK(t.ApplyStampRedo(rec.Page, rec.Key, rec.TID, rec.TS, uint64(rec.LSN)))
		case wal.TypeCommit:
			delete(att, rec.TID)
			db.seq.Reset(rec.TS)
			if err := db.stamp.RestoreCommitted(rec.TID, rec.TS, rec.HasTT); err != nil {
				return err
			}
		case wal.TypeAbort:
			delete(att, rec.TID)
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Adopt the redo trees so undo (and later opens) share them.
	db.mu.Lock()
	for id, t := range redoTrees {
		db.trees[id] = t
	}
	db.mu.Unlock()

	// --- Undo losers ---
	// Undo in TID order: rollback appends CLRs and may evict pages, so the
	// I/O it causes must be a deterministic function of the log contents for
	// crash-matrix replay.
	losers := make([]itime.TID, 0, len(att))
	for tid := range att {
		losers = append(losers, tid)
	}
	sort.Slice(losers, func(i, j int) bool { return losers[i] < losers[j] })
	for _, tid := range losers {
		lastLSN := att[tid]
		if err := db.undoTx(tid, lastLSN); err != nil {
			return fmt.Errorf("undo of transaction %d: %w", tid, err)
		}
		if _, err := db.log.Append(&wal.Record{Type: wal.TypeAbort, TID: tid, PrevLSN: lastLSN}); err != nil {
			return err
		}
	}
	return db.log.Flush()
}

// redoImage installs a logged page after-image if the on-disk page has not
// yet seen it. Pages allocated after the last durable allocator state are
// re-extended first.
func (db *DB) redoImage(id page.ID, image []byte, lsn wal.LSN) error {
	// Make the page addressable: allocations lost in the crash re-extend the
	// file here.
	for page.ID(db.pager.NumPages()) <= id {
		if _, err := db.pager.Allocate(); err != nil {
			return err
		}
	}
	// Compare LSNs. A page that never reached disk (or is torn) just takes
	// the image.
	cur, err := db.pager.ReadPage(id)
	if err == nil {
		if cl, ok := imageLSN(cur); ok && cl >= uint64(lsn) {
			return nil
		}
	} else if !errors.Is(err, disk.ErrChecksum) && !errors.Is(err, disk.ErrOutOfFile) {
		return err
	}
	// Drop any stale cached copy, then write the image through.
	if err := db.pool.Drop(id); err != nil {
		return err
	}
	img := make([]byte, db.pager.PageSize())
	copy(img, image)
	return db.pager.WritePage(id, img)
}

// imageLSN extracts the page LSN from a raw page image.
func imageLSN(buf []byte) (uint64, bool) {
	switch page.TypeOf(buf) {
	case page.TypeData:
		p, err := page.UnmarshalData(buf)
		if err != nil {
			return 0, false
		}
		return p.LSN, true
	case page.TypeIndex:
		p, err := page.UnmarshalIndex(buf)
		if err != nil {
			return 0, false
		}
		return p.LSN, true
	default:
		return 0, false
	}
}
