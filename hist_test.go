package immortaldb

// End-to-end tests for tiered history storage: versions migrated into
// compacted cold runs must stay exactly as readable as they were in the hot
// chains — AS OF point reads, scans and History() at every commit timestamp,
// across close/reopen, with the TieredHistory option later disabled, and
// under retention vacuuming.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"immortaldb/internal/itime"
	"immortaldb/internal/storage/vfs"
)

// tieredOpts force frequent time splits (small pages) and deterministic
// migration (no background compactor: tests call CompactHistory directly).
func tieredOpts(extra func(*Options)) func(*Options) {
	return func(o *Options) {
		o.TieredHistory = true
		o.PageSize = 1024
		o.CacheFrames = 32
		if extra != nil {
			extra(o)
		}
	}
}

// histModel replays a deterministic workload and records the exact expected
// state at every commit timestamp.
type histModel struct {
	states []map[string]string // state after commit i
	stamps []Timestamp         // commit timestamp i
	// versions[key] lists every committed version of key in commit order,
	// value "" meaning deleted.
	versions map[string][]string
}

func runTieredWorkload(t *testing.T, db *DB, tbl *Table, compactEvery int) *histModel {
	t.Helper()
	m := &histModel{versions: map[string][]string{}}
	cur := map[string]string{}
	keys := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	for i := 0; i < 48; i++ {
		key := keys[i%len(keys)]
		if i%11 == 7 {
			// Delete every so often; the key is re-inserted next round.
			ts := del(t, db, tbl, key)
			delete(cur, key)
			m.versions[key] = append(m.versions[key], "")
			m.record(cur, ts)
		} else {
			val := fmt.Sprintf("%s-v%03d-%s", key, i, "padpadpadpadpadpadpadpadpadpad")
			ts := set(t, db, tbl, key, val)
			cur[key] = val
			m.versions[key] = append(m.versions[key], val)
			m.record(cur, ts)
		}
		if compactEvery > 0 && i%compactEvery == compactEvery-1 {
			// Flush (and thereby stamp) everything so history pages are
			// migratable, then run one cold-tier pass.
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("checkpoint before compact: %v", err)
			}
			if err := db.CompactHistory(); err != nil {
				t.Fatalf("CompactHistory at commit %d: %v", i, err)
			}
		}
	}
	return m
}

func (m *histModel) record(cur map[string]string, ts Timestamp) {
	snap := make(map[string]string, len(cur))
	for k, v := range cur {
		snap[k] = v
	}
	m.states = append(m.states, snap)
	m.stamps = append(m.stamps, ts)
}

// verifyModel checks AS OF state at every recorded commit, point reads per
// key, and History completeness, against the model.
func verifyModel(t *testing.T, db *DB, tbl *Table, m *histModel, label string) {
	t.Helper()
	for i, ts := range m.stamps {
		wantState(t, db, tbl, ts, fmt.Sprintf("%s commit %d", label, i), m.states[i])
		tx, err := db.BeginAsOfTS(ts)
		if err != nil {
			t.Fatalf("%s: BeginAsOfTS(%v): %v", label, ts, err)
		}
		for key, want := range m.states[i] {
			if v, ok := get(t, tx, tbl, key); !ok || v != want {
				t.Fatalf("%s commit %d: %s = %q, %v; want %q", label, i, key, v, ok, want)
			}
		}
		tx.Commit()
	}
	// Before the first commit the table must read empty.
	first := m.stamps[0]
	if first.Wall > 0 {
		wantState(t, db, tbl, Timestamp{Wall: first.Wall - 1}, label+" pre-history", nil)
	}
	// History must list every committed version, newest first, no
	// duplicates — whether a version lives in a chain or a cold run.
	for key, vals := range m.versions {
		hist, err := db.History(tbl, []byte(key))
		if err != nil {
			t.Fatalf("%s: History(%s): %v", label, key, err)
		}
		if len(hist) != len(vals) {
			t.Fatalf("%s: History(%s) = %d versions, want %d", label, key, len(hist), len(vals))
		}
		for j, h := range hist {
			want := vals[len(vals)-1-j] // hist is newest first
			if want == "" {
				if !h.Deleted {
					t.Fatalf("%s: History(%s)[%d] not a delete", label, key, j)
				}
			} else if h.Deleted || string(h.Value) != want {
				t.Fatalf("%s: History(%s)[%d] = %q (del=%v), want %q", label, key, j, h.Value, h.Deleted, want)
			}
			if j > 0 && !h.TS.Less(hist[j-1].TS) {
				t.Fatalf("%s: History(%s) not newest-first at %d", label, key, j)
			}
		}
	}
}

func TestTieredHistoryAsOfBoundaries(t *testing.T) {
	db, dir := openTestDB(t, tieredOpts(nil))
	tbl, err := db.CreateTable("objects", TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}
	m := runTieredWorkload(t, db, tbl, 8)

	st := db.Stats()
	if st.PagesMigrated == 0 || st.HistRuns == 0 {
		t.Fatalf("no cold migration happened (migrated=%d runs=%d): test would not cover the cold path",
			st.PagesMigrated, st.HistRuns)
	}
	verifyModel(t, db, tbl, m, "live")

	// Recovery must rebuild the identical picture: manifest reload, run
	// files, chain cuts.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, testOpts(tieredOpts(nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.Table("objects")
	if err != nil {
		t.Fatal(err)
	}
	verifyModel(t, db2, tbl2, m, "reopened")
	if st := db2.Stats(); st.HistRuns == 0 {
		t.Fatal("reopen lost the cold tier")
	}

	// Reopening WITHOUT TieredHistory must still serve migrated versions —
	// the cold read path is always on; the option only gates new migrations.
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, err := Open(dir, testOpts(func(o *Options) {
		o.PageSize = 1024
		o.CacheFrames = 32
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	tbl3, err := db3.Table("objects")
	if err != nil {
		t.Fatal(err)
	}
	verifyModel(t, db3, tbl3, m, "untiered-reopen")
	if err := db3.CompactHistory(); !errors.Is(err, ErrTieredOff) {
		t.Fatalf("CompactHistory without the option = %v, want ErrTieredOff", err)
	}
}

func TestTieredHistoryCompactsLevels(t *testing.T) {
	db, _ := openTestDB(t, tieredOpts(nil))
	tbl, _ := db.CreateTable("objects", TableOptions{Immortal: true})
	// Compact after every couple of commits: many small level-0 runs, so the
	// fanout trigger must merge them upward.
	m := runTieredWorkload(t, db, tbl, 2)
	st := db.Stats()
	if st.HistRuns == 0 {
		t.Fatal("no runs written")
	}
	if st.HistRuns >= histFanout {
		// With fanout merging, the live run count stays below the fanout at
		// every level; a long level-0 pileup means merging never ran.
		man := db.hist.Manifest(tbl.meta.ID)
		perLevel := map[uint8]int{}
		for _, r := range man.Runs {
			perLevel[r.Level]++
		}
		for lvl, n := range perLevel {
			if n >= histFanout {
				t.Fatalf("level %d holds %d runs (fanout %d): merge never triggered (%+v)",
					lvl, n, histFanout, perLevel)
			}
		}
	}
	verifyModel(t, db, tbl, m, "compacted")
}

func TestTieredHistoryRetention(t *testing.T) {
	clock := testClock()
	db, _ := openTestDB(t, tieredOpts(func(o *Options) {
		o.Clock = clock
		o.Retention = 10 * itime.TickDuration
	}))
	tbl, _ := db.CreateTable("objects", TableOptions{Immortal: true})

	var stamps []Timestamp
	for i := 0; i < 30; i++ {
		stamps = append(stamps, set(t, db, tbl, "k", fmt.Sprintf("v%03d-padpadpadpadpadpadpadpadpadpadpadpad", i)))
		if i%6 == 5 {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := db.CompactHistory(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Let the clock run far past every version, then compact until the
	// fanout merges have vacuumed behind the horizon.
	clock.Advance(1000 * itime.TickDuration)
	for i := 0; i < 4; i++ {
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := db.CompactHistory(); err != nil {
			t.Fatal(err)
		}
	}
	hist, err := db.History(tbl, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) >= len(stamps) {
		t.Fatalf("retention vacuumed nothing: %d versions survive of %d", len(hist), len(stamps))
	}
	// The newest version must always survive and read correctly now.
	tx, _ := db.Begin(Serializable)
	if v, ok := get(t, tx, tbl, "k"); !ok || v[:4] != "v029" {
		t.Fatalf("current read after vacuum = %q, %v", v, ok)
	}
	tx.Commit()
}

func TestTieredHistoryBackgroundCompactor(t *testing.T) {
	db, _ := openTestDB(t, tieredOpts(func(o *Options) {
		o.HistCompactEvery = 5 * time.Millisecond
		o.Threshold = 4
	}))
	tbl, _ := db.CreateTable("objects", TableOptions{Immortal: true})
	for i := 0; i < 60; i++ {
		set(t, db, tbl, fmt.Sprintf("key-%02d", i%6), fmt.Sprintf("val-%03d-padpadpadpadpadpadpadpad", i))
		if i%10 == 9 {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for db.Stats().HistCompactions == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if db.Stats().HistCompactions == 0 {
		t.Fatal("background compactor never completed a pass")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close with live compactor: %v", err)
	}
}

func TestTieredHistoryRejectsTSBMode(t *testing.T) {
	_, err := Open(t.TempDir(), testOpts(func(o *Options) {
		o.TieredHistory = true
		o.HistoricalIndex = IndexTSB
	}))
	if err == nil {
		t.Fatal("TieredHistory with IndexTSB must refuse to open")
	}
}

func TestTieredHistoryFaultDegrades(t *testing.T) {
	fs := vfs.NewSim(7)
	open := func() (*DB, *Table) {
		db, err := Open("db", testOpts(tieredOpts(func(o *Options) {
			o.FS = fs
			o.NoSync = false
		})))
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := db.Table("objects")
		if err != nil {
			tbl, err = db.CreateTable("objects", TableOptions{Immortal: true})
			if err != nil {
				t.Fatal(err)
			}
		}
		return db, tbl
	}
	db, tbl := open()
	cur := map[string]string{}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("key-%02d", i%5)
		val := fmt.Sprintf("val-%03d-padpadpadpadpadpadpadpadpadpad", i)
		set(t, db, tbl, key, val)
		cur[key] = val
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Every write to a run file fails: the pass must error and latch the
	// engine degraded without corrupting anything already acked.
	fs.InjectFault(vfs.Fault{Op: vfs.OpWrite, File: ".run.", Err: vfs.ErrInjectedIO, Count: -1})
	err := db.CompactHistory()
	if err == nil {
		t.Fatal("CompactHistory succeeded through injected run-write EIO")
	}
	if db.Degraded() == nil {
		t.Fatal("run-write EIO did not degrade the engine")
	}
	fs.ClearFaults()
	// Degraded reads must still serve the full acked state.
	tx, err := db.Begin(Serializable)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range cur {
		if got, ok := get(t, tx, tbl, k); !ok || got != v {
			t.Fatalf("degraded read %s = %q, %v; want %q", k, got, ok, v)
		}
	}
	tx.Commit()
	db.Close()

	// Reopen recovers; the same pass now succeeds and everything reads back.
	db2, tbl2 := open()
	defer db2.Close()
	if err := db2.CompactHistory(); err != nil {
		t.Fatalf("CompactHistory after recovery: %v", err)
	}
	tx2, _ := db2.Begin(Serializable)
	for k, v := range cur {
		if got, ok := get(t, tx2, tbl2, k); !ok || got != v {
			t.Fatalf("post-recovery read %s = %q, %v; want %q", k, got, ok, v)
		}
	}
	tx2.Commit()
}

// TestTieredHistoryDeepKeyHistory pins a cold-read bug found end-to-end:
// when one key accumulates enough versions that its cold entries span
// several run blocks, the block-index search started at the LAST block
// carrying the key, so AS OF reads below the newest few versions returned
// not-found. Shape that triggers it: few keys, many versions each,
// multi-key commits, a cache too small to mask the cold path.
func TestTieredHistoryDeepKeyHistory(t *testing.T) {
	db, dir := openTestDB(t, tieredOpts(func(o *Options) {
		o.CacheFrames = 8
	}))
	tbl, err := db.CreateTable("objects", TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}

	const commits, nkeys = 60, 4
	var stamps []Timestamp
	val := func(k, i int) string {
		return fmt.Sprintf("k%d-v%03d-%060d", k, i, i)
	}
	for i := 0; i < commits; i++ {
		tx, err := db.Begin(Serializable)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < nkeys; k++ {
			if err := tx.Set(tbl, []byte(fmt.Sprintf("k%d", k)), []byte(val(k, i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		stamps = append(stamps, db.Now())
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactHistory(); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.PagesMigrated == 0 {
		t.Fatal("no migration: test would not cover the cold path")
	}

	check := func(db *DB, tbl *Table, label string) {
		t.Helper()
		for i, ts := range stamps {
			tx, err := db.BeginAsOfTS(ts)
			if err != nil {
				t.Fatalf("%s: BeginAsOfTS(commit %d): %v", label, i, err)
			}
			for k := 0; k < nkeys; k++ {
				got, ok := get(t, tx, tbl, fmt.Sprintf("k%d", k))
				if !ok || got != val(k, i) {
					t.Fatalf("%s: AS OF commit %d key k%d = %q ok=%v, want %q",
						label, i, k, got, ok, val(k, i))
				}
			}
			tx.Commit()
		}
		for k := 0; k < nkeys; k++ {
			h, err := db.History(tbl, []byte(fmt.Sprintf("k%d", k)))
			if err != nil || len(h) != commits {
				t.Fatalf("%s: History(k%d) = %d versions err=%v, want %d", label, k, len(h), err, commits)
			}
		}
	}
	check(db, tbl, "cold")

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, testOpts(tieredOpts(func(o *Options) { o.CacheFrames = 8 })))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.Table("objects")
	if err != nil {
		t.Fatal(err)
	}
	check(db2, tbl2, "reopened")
}
