package immortaldb

import (
	"errors"
	"fmt"
	"testing"
)

func TestCurrentTimeFixesCommitTimestamp(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})

	tx, _ := db.Begin(Serializable)
	ct, err := tx.CurrentTime()
	if err != nil {
		t.Fatal(err)
	}
	// Idempotent within the transaction.
	ct2, _ := tx.CurrentTime()
	if !ct.Equal(ct2) {
		t.Fatalf("CURRENT TIME moved: %v -> %v", ct, ct2)
	}
	if err := tx.Set(tbl, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// The committed version carries exactly the pre-chosen timestamp.
	hist, _ := db.History(tbl, []byte("k"))
	if len(hist) != 1 || !hist[0].Time.Equal(ct) {
		t.Fatalf("version time %v, CURRENT TIME %v", hist[0].Time, ct)
	}
}

func TestCurrentTimeOrderingViolationAborts(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	set(t, db, tbl, "other", "v0")

	tx, _ := db.Begin(Serializable)
	if _, err := tx.CurrentTime(); err != nil {
		t.Fatal(err)
	}
	// A different transaction commits AFTER the fixed timestamp.
	set(t, db, tbl, "hot", "newer")

	// Reading the newer version now contradicts the fixed timestamp.
	_, _, err := tx.Get(tbl, []byte("hot"))
	if !errors.Is(err, ErrTimestampOrder) {
		t.Fatalf("read of newer version: %v", err)
	}
	// Writing over it is equally forbidden.
	err = tx.Set(tbl, []byte("hot"), []byte("mine"))
	if !errors.Is(err, ErrTimestampOrder) {
		t.Fatalf("write over newer version: %v", err)
	}
	// Old data remains accessible.
	if v, ok := get(t, tx, tbl, "other"); !ok || v != "v0" {
		t.Fatalf("old data: %q, %v", v, ok)
	}
	tx.Rollback()
}

func TestCurrentTimeCommitOrderStaysConsistent(t *testing.T) {
	// A CURRENT TIME transaction commits after later-stamped transactions;
	// historical queries must still see a coherent database: at the fixed
	// time the transaction's writes appear, ordered before everything that
	// committed with larger timestamps.
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})

	early, _ := db.Begin(Serializable)
	ct, _ := early.CurrentTime()
	if err := early.Set(tbl, []byte("a"), []byte("early")); err != nil {
		t.Fatal(err)
	}
	// Unrelated transactions commit in between with larger timestamps.
	for i := 0; i < 10; i++ {
		set(t, db, tbl, fmt.Sprintf("pad%d", i), "x")
	}
	if err := early.Commit(); err != nil {
		t.Fatal(err)
	}
	// As of the fixed time: the early write is visible, the pads are not.
	tx, _ := db.BeginAsOf(ct)
	if v, ok := get(t, tx, tbl, "a"); !ok || v != "early" {
		t.Fatalf("a as of fixed time: %q, %v", v, ok)
	}
	if _, ok := get(t, tx, tbl, "pad5"); ok {
		t.Fatal("later-stamped pad visible at the earlier fixed time")
	}
	tx.Commit()
	// And timestamps across the table are unique and internally ordered.
	hist, _ := db.History(tbl, []byte("a"))
	if len(hist) != 1 {
		t.Fatalf("history = %d", len(hist))
	}
}

func TestCurrentTimeWithHeavySplitting(t *testing.T) {
	// Time splits must never move their boundary past a reserved timestamp:
	// the reserved-time versions must still land inside current pages. (Like
	// a long-running snapshot pinning versions, a long-running CURRENT TIME
	// transaction pins the time-split boundary; key splits still proceed.)
	db, _ := openTestDB(t, func(o *Options) { o.PageSize = 2048 })
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	for i := 0; i < 200; i++ {
		set(t, db, tbl, fmt.Sprintf("k%02d", i%8), fmt.Sprintf("v%d", i))
	}
	tx, _ := db.Begin(Serializable)
	ct, _ := tx.CurrentTime()
	if err := tx.Set(tbl, []byte("reserved"), []byte("val")); err != nil {
		t.Fatal(err)
	}
	// Hammer other keys to force splits while the reservation is pending.
	for i := 0; i < 150; i++ {
		set(t, db, tbl, fmt.Sprintf("k%02d", i%8), fmt.Sprintf("post-%d", i))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.GetAsOf(tbl, []byte("reserved"), ct)
	if err != nil || !ok || string(v) != "val" {
		t.Fatalf("reserved-time read: %q, %v, %v", v, ok, err)
	}
	// With the reservation released, history truncation resumes.
	for i := 0; i < 150; i++ {
		set(t, db, tbl, fmt.Sprintf("k%02d", i%8), fmt.Sprintf("late-%d", i))
	}
	if db.TreeStats(tbl).TimeSplits == 0 {
		t.Fatal("no time splits at all")
	}
}

func TestCurrentTimeModeRestrictions(t *testing.T) {
	db, _ := openTestDB(t, nil)
	db.CreateTable("t", TableOptions{Immortal: true})
	si, _ := db.Begin(SnapshotIsolation)
	if _, err := si.CurrentTime(); err == nil {
		t.Fatal("CURRENT TIME allowed under snapshot isolation")
	}
	si.Rollback()
	old, _ := db.BeginAsOfTS(db.Now())
	ct, err := old.CurrentTime()
	if err != nil {
		t.Fatal(err)
	}
	if !ct.Equal(db.Now().Time()) {
		t.Fatalf("AS OF CURRENT TIME = %v", ct)
	}
	old.Commit()
}

func TestExportAsOf(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("inventory", TableOptions{Immortal: true})
	db.CreateTable("scratch", TableOptions{}) // conventional: not exported
	for i := 0; i < 30; i++ {
		set(t, db, tbl, fmt.Sprintf("item%02d", i), "stocked")
	}
	cut := db.Now()
	for i := 0; i < 30; i += 2 {
		del(t, db, tbl, fmt.Sprintf("item%02d", i))
	}
	set(t, db, tbl, "item01", "restocked")

	exportDir := t.TempDir()
	if err := db.ExportAsOf(cut, exportDir); err != nil {
		t.Fatal(err)
	}

	restored, err := Open(exportDir, testOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := restored.Tables(); len(got) != 1 || got[0] != "inventory" {
		t.Fatalf("restored tables = %v", got)
	}
	rtbl, _ := restored.Table("inventory")
	tx, _ := restored.Begin(Serializable)
	n := 0
	tx.Scan(rtbl, nil, nil, func(k, v []byte) bool {
		if string(v) != "stocked" {
			t.Fatalf("%s = %q in the restore", k, v)
		}
		n++
		return true
	})
	tx.Commit()
	if n != 30 {
		t.Fatalf("restore has %d items, want 30 (the pre-deletion state)", n)
	}
	// The restore is a live, writable database.
	if err := restored.Update(func(tx *Tx) error {
		return tx.Set(rtbl, []byte("item99"), []byte("new"))
	}); err != nil {
		t.Fatal(err)
	}
}
