package immortaldb

import (
	"fmt"
	"time"

	"immortaldb/internal/itime"
)

// HistoryEntry is one version in a record's time-travel history.
type HistoryEntry struct {
	// Value is the record value (nil for a deletion).
	Value []byte
	// Time is the version's transaction (commit) time.
	Time time.Time
	// TS is the exact engine timestamp, usable with BeginAsOfTS.
	TS Timestamp
	// Deleted marks a delete stub: the record was deleted at Time.
	Deleted bool
	// Pending marks a version of a still-uncommitted transaction.
	Pending bool
	// TID is the writing transaction, set only while Pending.
	TID TID
}

// History returns every version of key in t, newest first — the paper's
// "time travel" over a particular object (Section 4.2). The table must be
// immortal.
func (db *DB) History(t *Table, key []byte) ([]HistoryEntry, error) {
	if !t.meta.Immortal {
		return nil, fmt.Errorf("%w: %s", ErrNotImmortal, t.meta.Name)
	}
	vis, err := t.tree.History(key)
	if err != nil {
		return nil, err
	}
	out := make([]HistoryEntry, 0, len(vis))
	for _, v := range vis {
		e := HistoryEntry{
			Value:   v.Value,
			Deleted: v.Stub,
			Pending: !v.Stamped,
			TID:     v.TID,
		}
		if v.Stamped {
			e.TS = v.TS
			e.Time = v.TS.Time()
		}
		if v.Stub {
			e.Value = nil
		}
		out = append(out, e)
	}
	return out, nil
}

// GetAsOf is a convenience one-shot historical point read.
func (db *DB) GetAsOf(t *Table, key []byte, at time.Time) ([]byte, bool, error) {
	tx, err := db.BeginAsOf(at)
	if err != nil {
		return nil, false, err
	}
	defer tx.Commit()
	return tx.Get(t, key)
}

// Now returns the timestamp of the most recent visible commit; an AS OF
// transaction at Now sees exactly the current committed state. With commits
// in flight, Now trails the sequencer by exactly those not-yet-published
// timestamps.
func (db *DB) Now() Timestamp { return db.visibleTS() }

// MaxTime is the open-ended "current state" timestamp.
func MaxTime() Timestamp { return itime.Max }
