// Package immortaldb is a from-scratch Go implementation of Immortal DB
// (Lomet et al., "Transaction Time Support Inside a Database Engine", ICDE
// 2006): an embedded storage engine with transaction-time support built in.
//
// Updates never remove information: every insert, update and delete adds a
// new record version, timestamped lazily with its transaction's commit time,
// and stored in a time-split B-tree that integrates current and historical
// data. The engine supports serializable transactions (fine-grained
// locking), snapshot isolation, and read-only AS OF transactions over any
// past state of immortal tables.
//
//	db, _ := immortaldb.Open(dir, nil)
//	tbl, _ := db.CreateTable("accounts", immortaldb.TableOptions{Immortal: true})
//	tx, _ := db.Begin(immortaldb.Serializable)
//	tx.Set(tbl, []byte("alice"), []byte("100"))
//	tx.Commit()
//	...
//	old, _ := db.BeginAsOf(yesterday)
//	balance, ok, _ := old.Get(tbl, []byte("alice"))
package immortaldb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"immortaldb/internal/buffer"
	"immortaldb/internal/catalog"
	"immortaldb/internal/cow"
	"immortaldb/internal/hist"
	"immortaldb/internal/itime"
	"immortaldb/internal/lock"
	"immortaldb/internal/obs"
	"immortaldb/internal/stamp"
	"immortaldb/internal/storage/disk"
	"immortaldb/internal/storage/page"
	"immortaldb/internal/storage/vfs"
	"immortaldb/internal/tsb"
	"immortaldb/internal/wal"
)

// Observability: end-to-end commit and checkpoint latency, plus lazy
// stamping split by trigger — the paper's two stamping opportunities (flush
// of a dirty page vs. ordinary access to a page with unstamped versions).
var (
	obsCommitLat    = obs.NewHistogram("immortaldb_commit_seconds", "End-to-end latency of a writing transaction's Commit, including the durability fsync.", obs.LatencyBuckets)
	obsCkptLat      = obs.NewHistogram("immortaldb_checkpoint_seconds", "Latency of one checkpoint (PTT sync, flush-all, checkpoint record, PTT GC).", obs.LatencyBuckets)
	obsStampFlush   = obs.NewCounter("immortaldb_stamp_flush_triggered_total", "Record versions stamped because their dirty page was being flushed.")
	obsStampAccess  = obs.NewCounter("immortaldb_stamp_access_triggered_total", "Record versions stamped when a tree access visited their page.")
	obsDegraded     = obs.NewGauge("immortaldb_degraded", "1 while the engine is read-only-degraded after an I/O failure, else 0.")
	obsCkptTruncErr = obs.NewCounter("immortaldb_checkpoint_truncate_errors_total", "Failed attempts to delete dead WAL segments at a checkpoint (best-effort).")
)

// Timestamp is the transaction timestamp type: an 8-byte wall-clock value
// with 20 ms resolution extended by a 4-byte sequence number (Figure 1b of
// the paper).
type Timestamp = itime.Timestamp

// TID identifies a transaction.
type TID = itime.TID

// IndexMode selects how historical versions are reached.
type IndexMode int

// Historical index modes.
const (
	// IndexChain walks history page chains from the current page — the
	// configuration the paper measures in Section 5.
	IndexChain IndexMode = IndexMode(tsb.ModeChain)
	// IndexTSB posts time-split B-tree index entries for history pages,
	// the paper's Section 3.4 / future-work configuration.
	IndexTSB IndexMode = IndexMode(tsb.ModeTSB)
)

// Options configure Open. The zero value (or nil) gives an 8 KB-page,
// chain-indexed, lazily-timestamped engine with durable commits.
type Options struct {
	// PageSize in bytes (default 8192, the paper's page size).
	PageSize int
	// CacheFrames is the buffer pool capacity in pages (default 1024).
	CacheFrames int
	// NoSync disables fsync on commit (log and timestamp table). The
	// default (false) gives durable commits; benchmarks set it to measure
	// engine CPU and buffer behaviour rather than disk latency.
	NoSync bool
	// HistoricalIndex selects IndexChain (default) or IndexTSB.
	HistoricalIndex IndexMode
	// Threshold is the time-split utilization threshold T (default 0.70).
	Threshold float64
	// Clock supplies wall ticks; nil uses the OS clock at 20 ms resolution.
	Clock itime.Clock
	// DisablePTTGC turns off incremental timestamp-table garbage collection
	// (ablation A3).
	DisablePTTGC bool
	// EagerTimestamping stamps versions at commit, with logging, instead of
	// lazily (ablation A1 — the alternative Section 2.2 argues against).
	EagerTimestamping bool
	// PTTSyncEveryCommit hardens the persistent timestamp table on every
	// commit rather than at checkpoints.
	PTTSyncEveryCommit bool
	// CheckpointEveryN takes an automatic checkpoint every N committed
	// transactions (0 disables; checkpoints can always be taken manually).
	CheckpointEveryN int
	// GroupCommit controls the WAL group-commit dispatcher: when on (the
	// zero value), concurrent committers that reach the fsync together
	// share a single one — a leader syncs the batched commit records while
	// the others wait on the result. GroupCommitOff reverts to one fsync
	// per commit.
	GroupCommit GroupCommitMode
	// CommitEvery bounds how long a group-commit leader waits before
	// syncing, letting more committers join its batch at the cost of added
	// commit latency (0, the default, syncs immediately).
	CommitEvery time.Duration
	// LockTimeout bounds lock waits (default 10s).
	LockTimeout time.Duration
	// FS redirects all file I/O (page file, log, timestamp table) to an
	// alternative filesystem — vfs.NewSim for crash testing. nil uses the
	// real one; dir is then created on disk.
	FS vfs.FS
	// FullPageWrites logs a physical image of every page just before it is
	// written in place, so recovery can repair a write torn mid-page by a
	// crash (the same defense as PostgreSQL's full_page_writes). Off by
	// default: it costs log volume, and tearing is still *detected* without
	// it via page CRCs.
	FullPageWrites bool
	// DrainTimeout bounds how long Close waits for in-flight transaction
	// operations (a commit mid-fsync, a scan mid-page) to finish before
	// closing the files out from under them (default 15s). Transactions
	// still open once operations drain are rolled back on their owners'
	// behalf; their next call returns ErrAborted.
	DrainTimeout time.Duration
	// WALSegmentSize caps each log segment file (default 16 MB). Rotation
	// preallocates the next segment, so an out-of-space disk fails a commit
	// cleanly at segment-extend time instead of tearing a half-written
	// record. Small values are useful in tests to exercise rotation.
	WALSegmentSize int64
	// WALLowWater is extra free space (beyond the next segment itself) that
	// must be available for rotation to proceed; below it the rotation fails
	// with ENOSPC while the disk still has headroom for checkpoint writes
	// and the PTT, letting the engine degrade cleanly rather than wedge.
	// Effective only on filesystems that report free space (vfs.FreeSpacer).
	WALLowWater int64
	// RetainWAL keeps every log segment forever: checkpoints stop reclaiming
	// dead segments, so the chain reaches back to the database's creation
	// and RestoreAsOf can rebuild the state at any past timestamp. The cost
	// is unbounded log growth.
	RetainWAL bool
	// TieredHistory migrates history pages of immortal chain-indexed tables
	// into the cold tier: compacted, prefix/delta-compressed immutable run
	// files (CompactHistory, and the background compactor when
	// HistCompactEvery is set). Reads spanning the hot/cold boundary are
	// transparent either way — the cold tier is always consulted when a
	// history chain ends without covering the requested time — so the option
	// gates only whether new migrations happen. Requires IndexChain.
	TieredHistory bool
	// Retention drops historical versions older than now-Retention during
	// history compaction: for each key, versions strictly older than the
	// newest version at or before the horizon are vacuumed from merged runs.
	// 0 keeps everything forever (the immortal default). Effective only with
	// TieredHistory.
	Retention time.Duration
	// HistCompactEvery runs the background history compactor at this
	// interval (a time split also kicks it early). 0 disables the goroutine;
	// CompactHistory can always be called manually — crash and chaos tests
	// rely on that for determinism. Effective only with TieredHistory.
	HistCompactEvery time.Duration
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.PageSize == 0 {
		out.PageSize = page.DefaultSize
	}
	if out.CacheFrames == 0 {
		out.CacheFrames = 1024
	}
	if out.Threshold == 0 {
		out.Threshold = tsb.DefaultThreshold
	}
	if out.Clock == nil {
		out.Clock = &itime.WallClock{}
	}
	return out
}

// GroupCommitMode toggles WAL group commit. The zero value is on.
type GroupCommitMode int

// Group-commit modes.
const (
	// GroupCommitOn batches concurrent commit fsyncs (the default).
	GroupCommitOn GroupCommitMode = iota
	// GroupCommitOff gives every commit its own fsync.
	GroupCommitOff
)

// DefaultDrainTimeout is Options.DrainTimeout's default.
const DefaultDrainTimeout = 15 * time.Second

// Errors returned by the engine.
var (
	ErrClosed        = errors.New("immortaldb: database closed")
	ErrShuttingDown  = errors.New("immortaldb: database shutting down")
	ErrAborted       = errors.New("immortaldb: transaction aborted by shutdown")
	ErrTxDone        = errors.New("immortaldb: transaction already finished")
	ErrReadOnly      = errors.New("immortaldb: read-only (AS OF) transaction")
	ErrWriteConflict = errors.New("immortaldb: snapshot write conflict (first committer wins)")
	ErrNotImmortal   = errors.New("immortaldb: table does not keep persistent versions")
	ErrEmptyKey      = errors.New("immortaldb: empty key")
	ErrNoHistory     = errors.New("immortaldb: time predates table history")
	// ErrDegraded reports that a write-path I/O failure (ENOSPC, EIO, a
	// failed fsync) moved the engine to read-only-degraded. Reads keep being
	// served from clean state; every write entry point fails with this error,
	// which is not retryable in-process — close and reopen the database so
	// recovery can rebuild trustworthy state from the log. Inspect the cause
	// with DB.Degraded.
	ErrDegraded = errors.New("immortaldb: degraded to read-only by I/O failure, reopen required")
	// ErrReplica reports a write attempted on a read replica. Replicas apply
	// the primary's shipped log and serve reads at the replication horizon;
	// every mutation must go to the primary.
	ErrReplica = errors.New("immortaldb: read-only replica, writes must go to the primary")
	// ErrBeyondHorizon reports an AS OF time later than a replica's
	// replication horizon: the state at that time is not yet fully applied,
	// so serving the read could expose a torn view. Retry once the horizon
	// advances past the requested time, or read on the primary.
	ErrBeyondHorizon = errors.New("immortaldb: AS OF time beyond replication horizon")
	// ErrNotReplica reports Promote on a database that is already a primary —
	// a typed no-op, so a supervisor retrying a promotion is told the node is
	// already serving writes rather than fed a spurious failure.
	ErrNotReplica = errors.New("immortaldb: already a primary, promotion is a no-op")
)

// Table is a handle to one table.
type Table struct {
	meta *catalog.Table
	tree *tsb.Tree
}

// Name returns the table name.
func (t *Table) Name() string { return t.meta.Name }

// Immortal reports whether the table keeps persistent versions.
func (t *Table) Immortal() bool { return t.meta.Immortal }

// TableOptions configure CreateTable.
type TableOptions struct {
	// Immortal makes the table transaction-time: versions persist forever
	// and AS OF queries work (CREATE IMMORTAL TABLE).
	Immortal bool
	// Snapshot keeps recent versions for snapshot isolation on a
	// conventional table (ALTER TABLE ... ENABLE SNAPSHOT). Implied by
	// Immortal.
	Snapshot bool
	// Columns optionally records a schema for the SQL layer.
	Columns []catalog.Column
}

// DB is an Immortal DB database: one page file, one write-ahead log, and one
// persistent timestamp table under a directory.
type DB struct {
	opts Options
	dir  string

	pager *disk.Pager
	pool  *buffer.Pool
	log   *wal.Log
	ptt   *cow.Tree
	stamp *stamp.Manager
	locks *lock.Manager
	cat   *catalog.Catalog
	seq   *itime.Sequencer
	tids  *itime.TIDSource

	// visible is the snapshot visibility watermark: the timestamp of the
	// newest commit whose TID-to-timestamp mapping is published. It can
	// trail seq.Last() by the commits currently in flight between timestamp
	// issue and stamp.Commit; snapshot transactions read here, never the
	// sequencer, so a snapshot never includes a half-committed transaction.
	// Updated under commitMu, read lock-free.
	visible atomic.Pointer[itime.Timestamp]

	mu     sync.Mutex // guards trees, active, snapshots, lastLSN bookkeeping
	trees  map[uint32]*tsb.Tree
	active map[itime.TID]*Tx
	closed bool

	// draining is set at the start of Close: Begin refuses new transactions
	// (ErrShuttingDown) while in-flight operations — counted by opCount,
	// entered via Tx.opEnter — are waited out on the opDone condition.
	draining bool
	opCount  int
	opDone   *sync.Cond

	commitMu      sync.Mutex
	txnsSinceCkpt int

	// Replica state. replica is set for databases opened with OpenReplica:
	// the engine applies the primary's shipped log (ReplicaApply) and serves
	// reads at the replication horizon; every write path fails with
	// ErrReplica. appliedLSN is the horizon's log coordinate — the end of the
	// last fully applied record; replayMu serializes continuous redo;
	// readTIDs issues local read-transaction IDs from a namespace disjoint
	// from the primary's TIDs arriving in the stream.
	// replica is atomic because promotion flips it at runtime: Promote turns
	// a replica read-write, PromoteToFollower fences a deposed primary.
	replica    atomic.Bool
	appliedLSN atomic.Uint64
	// epoch is the promotion epoch: 0 for a never-failed-over database, then
	// the value of the newest TypePromote record in the log. A promoted
	// primary appends epoch+1 before accepting any write, so every commit it
	// acks is attributable to a handover the cluster performed.
	epoch    atomic.Uint64
	replayMu sync.Mutex
	replayer *redoApplier
	readTIDs atomic.Uint64

	// retainFloors holds WAL positions pinned against checkpoint truncation
	// — one per open base snapshot, so a follower seeded from it can still
	// pull the log suffix its page copy needs.
	retainMu     sync.Mutex
	retainFloors map[uint64]wal.LSN
	retainNext   uint64

	// degraded latches on the first unrecoverable write-path I/O failure;
	// degCause (under degMu) keeps the first failure for DB.Degraded. The
	// latch is one-way: only reopen-with-recovery clears it.
	degraded atomic.Bool
	degMu    sync.Mutex
	degCause error

	// Cold history tier (internal/hist). hist is always non-nil — reads
	// consult it whenever a chain ends short — while migration into it is
	// gated by Options.TieredHistory. histMu serializes migration/compaction
	// passes; the remaining fields manage the background compactor.
	hist                           *hist.Store
	histMu                         sync.Mutex
	histPass                       *VacuumStats // non-nil while a collecting pass runs; guarded by histMu
	histKick                       chan struct{}
	histStop                       chan struct{}
	histDone                       chan struct{}
	histStopOnce                   sync.Once
	pagesMigrated, histCompactions atomic.Uint64

	commits, aborts atomic.Uint64
}

// File names inside a database directory.
const (
	pagesFile = "data.pages"
	walFile   = "wal.log"
	pttFile   = "ptt.cow"
)

// Open opens or creates a database in dir.
func Open(dir string, opts *Options) (*DB, error) {
	return openDB(dir, opts, false)
}

func openDB(dir string, opts *Options, replica bool) (*DB, error) {
	o := opts.withDefaults()
	if o.TieredHistory && o.HistoricalIndex == IndexTSB {
		return nil, fmt.Errorf("immortaldb: TieredHistory requires IndexChain (TSB mode indexes history in place)")
	}
	fsys := o.FS
	if fsys == nil {
		// Paths on a simulated FS are pure names; only the real one needs
		// the directory to exist.
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("immortaldb: create %s: %w", dir, err)
		}
		fsys = vfs.OS()
	}
	pager, err := disk.OpenFS(fsys, filepath.Join(dir, pagesFile), o.PageSize)
	if err != nil {
		return nil, err
	}
	log, err := wal.OpenFS(fsys, filepath.Join(dir, walFile))
	if err != nil {
		pager.Close()
		return nil, err
	}
	log.NoSync = o.NoSync
	log.GroupCommit = o.GroupCommit != GroupCommitOff
	log.CommitEvery = o.CommitEvery
	if o.WALSegmentSize > 0 {
		log.SegmentSize = o.WALSegmentSize
	}
	// LowWater is armed only after recovery (see the end of Open): the gate
	// exists to reserve headroom FOR recovery, so recovery itself — and the
	// checkpoint that reclaims dead segments behind it — runs ungated.
	ptt, err := cow.Open(filepath.Join(dir, pttFile), cow.Options{
		ValSize: stamp.PTTValueLen,
		NoSync:  o.NoSync,
		FS:      fsys,
	})
	if err != nil {
		log.Close()
		pager.Close()
		return nil, err
	}

	db := &DB{
		opts:         o,
		dir:          dir,
		pager:        pager,
		pool:         buffer.New(pager, o.CacheFrames),
		log:          log,
		ptt:          ptt,
		stamp:        stamp.NewManager(ptt),
		locks:        lock.New(),
		cat:          catalog.New(),
		seq:          itime.NewSequencer(o.Clock),
		tids:         itime.NewTIDSource(1),
		trees:        make(map[uint32]*tsb.Tree),
		active:       make(map[itime.TID]*Tx),
		retainFloors: make(map[uint64]wal.LSN),
		hist:         hist.NewStore(fsys, dir),
	}
	db.replica.Store(replica)
	if !replica {
		// A primary's log appends its own timeline; no shipped byte may ever
		// be grafted onto it. Sealing here also covers a promoted survivor
		// reopened as a primary, whose in-memory promotion seal died with
		// the old process.
		log.Seal()
	}
	db.opDone = sync.NewCond(&db.mu)
	db.stamp.GCEnabled = !o.DisablePTTGC
	// PTT write-ahead: the PTT file must never harden a TID→TS mapping whose
	// commit record is still in the unsynced log tail (recovery would stamp a
	// loser's versions from it).
	db.stamp.ForceLog = log.SyncTo
	if o.LockTimeout > 0 {
		db.locks.Timeout = o.LockTimeout
	}
	// The write-ahead rule: a page may be written only once the log covering
	// its LSN is durable.
	db.pool.FlushLSN = func(lsn uint64) error { return log.FlushTo(wal.LSN(lsn)) }
	// A failed page write (including its write-ahead log force) may have left
	// the page half on disk: degrade so nothing is trusted until recovery.
	// Writes refused *because* the pool is already read-only, or failing
	// against a closing log, are consequences of a state change, not disk
	// faults.
	db.pool.OnWriteError = func(err error) {
		if errors.Is(err, buffer.ErrReadOnly) || errors.Is(err, wal.ErrClosed) {
			return
		}
		obs.IOError("write", vfs.ErrClass(err))
		db.degrade(err)
	}
	// A replica never appends to its log copy, so no full-page images are
	// logged while the replica flag holds — the primary's own images in the
	// shipped stream are what recovery's torn-page tolerance leans on. The
	// check is dynamic, not an open-time branch, because Promote flips the
	// flag mid-life: the promotion checkpoint's flushes (and everything
	// after) must log images again, or a flush torn by a crash right after
	// the failover would have no covering image in the redo scan window.
	if o.FullPageWrites {
		db.pool.PreWrite = func(id page.ID, buf []byte) (uint64, error) {
			if db.replica.Load() {
				return 0, nil
			}
			lsn, err := log.Append(&wal.Record{Type: wal.TypePageImage, Page: id, Img: buf})
			return uint64(lsn), err
		}
	}
	// Flush-triggered lazy timestamping (Section 2.2). The page's StampLSN
	// must advance before NoteStamped, which may retire the VTT entries
	// holding the commit-record LSNs.
	db.pool.PreFlush = func(pg any) {
		dp, ok := pg.(*page.DataPage)
		if !ok || dp.NoTail || !dp.HasUnstamped() {
			return
		}
		counts := dp.StampAll(db.stamp.Resolve)
		if len(counts) == 0 {
			return
		}
		if obs.Enabled() {
			for _, n := range counts {
				obsStampFlush.Add(uint64(n))
			}
		}
		if lsn := uint64(db.stamp.MaxCommitLSN(counts)); lsn > dp.StampLSN {
			dp.StampLSN = lsn
		}
		db.stamp.NoteStamped(counts, db.log.End)
	}

	if data := pager.GetMeta(); len(data) > 0 {
		if err := db.cat.Load(data); err != nil {
			db.closeFiles()
			return nil, err
		}
	}
	if err := db.recover(); err != nil {
		db.closeFiles()
		return nil, fmt.Errorf("immortaldb: recovery: %w", err)
	}
	// Recovery republished every durable commit, so the watermark starts at
	// the last issued timestamp.
	last := db.seq.Last()
	db.visible.Store(&last)
	// Open a tree per table. The cold tier loads first: recovery's redo may
	// already have swapped newer manifests into the store, and LoadTable is
	// idempotent against that (file state is authoritative).
	for _, t := range db.cat.List() {
		if t.Immortal {
			if err := db.hist.LoadTable(t.ID); err != nil {
				db.closeFiles()
				return nil, fmt.Errorf("immortaldb: load history tier for %s: %w", t.Name, err)
			}
		}
		db.trees[t.ID] = db.openTree(t)
	}
	if replica {
		// A replica never writes its log: no open-time checkpoint (the
		// primary's checkpoint records drive local ones instead), no
		// low-water arming. Continuous redo starts at the recovery scan's
		// end.
		db.replayer = newLiveApplier(db)
		obsDegraded.Set(0)
		return db, nil
	}
	if err := db.Checkpoint(); err != nil {
		db.closeFiles()
		return nil, err
	}
	// The open-time checkpoint just truncated every reclaimable segment, so
	// free space is as good as it gets; from here on, rotations refuse below
	// the low-water mark to keep the next recovery's headroom intact.
	log.LowWater = o.WALLowWater
	// Drop run files orphaned by a migration/compaction that crashed between
	// writing runs and installing the manifest. Best-effort: a failure here
	// only leaks disk space.
	for _, t := range db.cat.List() {
		if t.Immortal {
			_ = db.hist.Cleanup(t.ID)
		}
	}
	if o.TieredHistory && o.HistCompactEvery > 0 {
		db.histKick = make(chan struct{}, 1)
		db.histStop = make(chan struct{})
		db.histDone = make(chan struct{})
		go db.compactorLoop(o.HistCompactEvery)
	}
	// A fresh open is healthy by construction: recovery re-read disk state.
	obsDegraded.Set(0)
	return db, nil
}

func (db *DB) closeFiles() {
	db.hist.Close()
	db.ptt.Close()
	db.log.Close()
	db.pager.Close()
}

// degrade latches the engine read-only after a write-path I/O failure. The
// first cause wins; the buffer pool stops writing dirty pages (reads keep
// being served from clean state), and every write entry point fails with
// ErrDegraded until the database is reopened. Never cleared in-process: a
// failed fsync may have silently dropped dirty kernel buffers (the
// "fsyncgate" lesson), so only recovery — which re-reads disk — can
// re-establish what is actually durable.
func (db *DB) degrade(cause error) {
	db.degMu.Lock()
	if db.degCause == nil {
		db.degCause = cause
		db.degraded.Store(true)
		db.pool.SetReadOnly(true)
		obsDegraded.Set(1)
	}
	db.degMu.Unlock()
}

// degradeIf degrades the engine when err is a disk-level failure, and leaves
// it healthy for logical errors (conflicts, bad arguments, shutdown).
func (db *DB) degradeIf(err error) {
	if ioFailure(err) {
		db.degrade(err)
	}
}

// ioFailure classifies err: true for failures of the storage stack itself —
// a latched log, ENOSPC, injected or real EIO — whose side effects on disk
// are unknown, false for logical errors that leave disk state trustworthy.
func ioFailure(err error) bool {
	if err == nil || errors.Is(err, wal.ErrClosed) || errors.Is(err, buffer.ErrReadOnly) {
		return false
	}
	if errors.Is(err, wal.ErrFailed) {
		return true
	}
	switch vfs.ErrClass(err) {
	case vfs.ClassNoSpace, vfs.ClassIO, vfs.ClassCrash:
		return true
	}
	return false
}

// Degraded returns nil while the engine is healthy, or the I/O failure that
// moved it to read-only-degraded.
func (db *DB) Degraded() error {
	if !db.degraded.Load() {
		return nil
	}
	db.degMu.Lock()
	cause := db.degCause
	db.degMu.Unlock()
	return fmt.Errorf("%w: %v", ErrDegraded, cause)
}

// treeLogger adapts the WAL for one table's tree.
type treeLogger struct {
	db      *DB
	tableID uint32
}

// LogSMO logs one structure modification as a single TypeSMO record: the
// after-images of every touched page plus, on a root move, the full catalog
// snapshot. One record means one checksum — a torn log tail keeps the whole
// modification or none of it, so recovery never installs a post-split leaf
// whose moved keys have no surviving route.
func (l *treeLogger) LogSMO(pages []any, root *tsb.RootChange) (uint64, error) {
	imgs := make([]wal.PageImg, len(pages))
	for i, pg := range pages {
		buf := make([]byte, l.db.pager.PageSize())
		var id page.ID
		var err error
		switch v := pg.(type) {
		case *page.DataPage:
			id, err = v.ID, v.Marshal(buf)
		case *page.IndexPage:
			id, err = v.ID, v.Marshal(buf)
		default:
			return 0, fmt.Errorf("immortaldb: cannot log image of %T", pg)
		}
		if err != nil {
			return 0, err
		}
		imgs[i] = wal.PageImg{Page: id, Img: buf}
	}
	rec := &wal.Record{Type: wal.TypeSMO, Table: l.tableID, Images: imgs}
	if root != nil {
		if err := l.db.cat.SetRoot(l.tableID, root.Root, root.IsLeaf); err != nil {
			return 0, err
		}
		blob, err := l.db.cat.Marshal()
		if err != nil {
			return 0, err
		}
		rec.Blob = blob
	}
	lsn, err := l.db.log.Append(rec)
	return uint64(lsn), err
}

// logCatalog appends a full catalog snapshot to the log.
func (db *DB) logCatalog() error {
	blob, err := db.cat.Marshal()
	if err != nil {
		return err
	}
	_, err = db.log.Append(&wal.Record{Type: wal.TypeCatalog, Blob: blob})
	return err
}

// treeStamper adapts the stamp manager for trees.
type treeStamper struct{ db *DB }

func (s *treeStamper) Resolve(tid itime.TID) (itime.Timestamp, bool) {
	return s.db.stamp.Resolve(tid)
}

func (s *treeStamper) NoteStamped(counts map[itime.TID]int) {
	if obs.Enabled() {
		for _, n := range counts {
			obsStampAccess.Add(uint64(n))
		}
	}
	s.db.stamp.NoteStamped(counts, s.db.log.End)
}

func (s *treeStamper) MaxCommitLSN(counts map[itime.TID]int) uint64 {
	return uint64(s.db.stamp.MaxCommitLSN(counts))
}

func (db *DB) openTree(t *catalog.Table) *tsb.Tree {
	cfg := db.treeConfig(t)
	return tsb.Open(cfg, t.Root, t.RootIsLeaf)
}

func (db *DB) treeConfig(t *catalog.Table) tsb.Config {
	cfg := tsb.Config{
		Pool:      db.pool,
		Pager:     db.pager,
		TableID:   t.ID,
		Logger:    &treeLogger{db: db, tableID: t.ID},
		Stamper:   &treeStamper{db: db},
		Mode:      tsb.Mode(db.opts.HistoricalIndex),
		Threshold: db.opts.Threshold,
		Immortal:  t.Immortal,
		NoTail:    !t.Versioned(),
		SplitNow: func() itime.Timestamp {
			now := db.seq.Last().Next()
			// A transaction that fixed its timestamp early (CURRENT TIME)
			// will commit versions stamped at that reserved time; the time
			// split boundary must not pass it.
			if r := db.minReservedTS(); !r.IsZero() && r.Less(now) {
				return r
			}
			return now
		},
		SnapshotHorizon: db.snapshotHorizon,
	}
	// Immortal chain tables read through to the cold tier whenever a history
	// chain ends without covering the requested time. The hook is always on —
	// runs written under TieredHistory must stay readable after a reopen with
	// the option off — while migration (the compactor kick) is gated.
	if t.Immortal && tsb.Mode(db.opts.HistoricalIndex) == tsb.ModeChain {
		cfg.Hist = &treeHist{db: db, tableID: t.ID}
		if db.opts.TieredHistory && !db.replica.Load() {
			cfg.OnTimeSplit = db.kickCompactor
		}
	}
	return cfg
}

// visibleTS returns the snapshot visibility watermark (see DB.visible).
func (db *DB) visibleTS() itime.Timestamp {
	if p := db.visible.Load(); p != nil {
		return *p
	}
	return itime.Timestamp{}
}

// advanceVisible publishes ts as committed-visible. Callers hold commitMu;
// the max keeps the watermark monotone when a CURRENT TIME transaction
// commits at a timestamp reserved before later commits.
func (db *DB) advanceVisible(ts itime.Timestamp) {
	if p := db.visible.Load(); p == nil || p.Less(ts) {
		t := ts
		db.visible.Store(&t)
	}
}

// snapshotHorizon returns the oldest timestamp an active snapshot can read;
// with no active snapshots everything up to the last commit is reclaimable
// (on non-immortal tables only).
func (db *DB) snapshotHorizon() itime.Timestamp {
	db.mu.Lock()
	defer db.mu.Unlock()
	h := db.seq.Last()
	for _, tx := range db.active {
		if tx.mode == SnapshotIsolation && tx.snapTS.Less(h) {
			h = tx.snapTS
		}
	}
	return h
}

// CreateTable creates a table. Immortal tables keep every version forever
// and answer AS OF queries; Snapshot tables keep recent versions for
// snapshot isolation; plain tables store bare records with no versioning
// overhead at all.
func (db *DB) CreateTable(name string, topts TableOptions) (*Table, error) {
	if db.replica.Load() {
		return nil, ErrReplica
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if db.draining {
		return nil, ErrShuttingDown
	}
	if err := db.Degraded(); err != nil {
		return nil, err
	}
	if topts.Immortal {
		topts.Snapshot = true
	}
	meta, err := db.cat.Create(catalog.Table{
		Name:     name,
		Immortal: topts.Immortal,
		Snapshot: topts.Snapshot,
		Columns:  topts.Columns,
	})
	if err != nil {
		return nil, err
	}
	tree, err := tsb.Create(db.treeConfig(meta))
	if err != nil {
		db.cat.Drop(name)
		return nil, err
	}
	root, isLeaf := tree.Root()
	meta.Root, meta.RootIsLeaf = root, isLeaf
	db.trees[meta.ID] = tree
	if err := db.logCatalog(); err != nil {
		db.degradeIf(err)
		return nil, err
	}
	if err := db.log.Flush(); err != nil {
		db.degradeIf(err)
		return nil, err
	}
	if err := db.saveCatalogMeta(); err != nil {
		db.degradeIf(err)
		return nil, err
	}
	return &Table{meta: meta, tree: tree}, nil
}

// Table returns a handle to an existing table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	meta, err := db.cat.Get(name)
	if err != nil {
		return nil, err
	}
	return &Table{meta: meta, tree: db.trees[meta.ID]}, nil
}

// Tables lists table names.
func (db *DB) Tables() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []string
	for _, t := range db.cat.List() {
		out = append(out, t.Name)
	}
	return out
}

func (db *DB) saveCatalogMeta() error {
	blob, err := db.cat.Marshal()
	if err != nil {
		return err
	}
	return db.pager.SetMeta(blob)
}

// Checkpoint hardens the database state: the persistent timestamp table is
// committed, all dirty pages flush (stamping committed versions on the way
// out), a checkpoint record is logged, and — now that the redo scan start
// point has moved — completed PTT entries are garbage collected (Section
// 2.2).
func (db *DB) Checkpoint() error {
	if db.replica.Load() {
		// Replica checkpoints are driven by the primary's checkpoint records
		// in the shipped stream (see replicaCheckpoint); a locally-initiated
		// one would append to the log copy.
		return ErrReplica
	}
	defer obsCkptLat.ObserveSince(obs.Now())
	span := obs.NewRootSpan("db.checkpoint")
	defer span.End()
	// The ATT snapshot must be consistent with the log. Terminal records
	// (commit records, rollback compensation) appear only under commitMu, so
	// holding it here pins every listed transaction in a known state: its
	// fate is still undecided, and whatever it logs next — more updates, its
	// commit, its CLRs — lands at or past beginLSN, inside the analysis scan
	// (Checkpoint.BeginLSN). Transactions whose fate is already logged are
	// skipped: their terminal records precede the checkpoint record in the
	// log, so recovery reading this checkpoint finds them durable, whereas
	// listing such a transaction as active would get it undone whenever the
	// redo scan starts past its commit record.
	db.commitMu.Lock()
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		db.commitMu.Unlock()
		return ErrClosed
	}
	if err := db.Degraded(); err != nil {
		// A degraded engine must not checkpoint: flushing pages or moving the
		// checkpoint pointer would claim durability the failed I/O disproved.
		db.mu.Unlock()
		db.commitMu.Unlock()
		return err
	}
	beginLSN := db.log.End()
	att := make([]wal.TxnState, 0, len(db.active))
	// undoFloor is the oldest log record a live transaction may still need to
	// read back for undo — segment truncation must never pass it.
	undoFloor := wal.LSN(0)
	for tid, tx := range db.active {
		if tx.terminalLogged {
			continue
		}
		tx.logMu.Lock()
		last := wal.LSN(tx.lastLSN.Load())
		first := wal.LSN(tx.firstLSN.Load())
		tx.logMu.Unlock()
		att = append(att, wal.TxnState{TID: tid, LastLSN: last})
		if first != 0 && (undoFloor == 0 || first < undoFloor) {
			undoFloor = first
		}
	}
	db.mu.Unlock()
	db.commitMu.Unlock()
	sort.Slice(att, func(i, j int) bool { return att[i].TID < att[j].TID })

	// PTT entries for commits already in the log must be durable before the
	// checkpoint can move the redo scan start past those commit records.
	if err := db.stamp.SyncPTT(); err != nil {
		db.degradeIf(err)
		return err
	}
	if err := db.saveCatalogMeta(); err != nil {
		db.degradeIf(err)
		return err
	}
	if err := db.pool.FlushAll(true); err != nil {
		db.degradeIf(err)
		return err
	}
	dpt := db.pool.DirtyPages() // pages re-dirtied during the flush, if any
	ck := &wal.Checkpoint{
		ActiveTxns: att,
		NextTID:    db.tids.Peek(),
		LastTS:     db.seq.Last(),
		BeginLSN:   beginLSN,
		Epoch:      db.epoch.Load(),
	}
	for id, recLSN := range dpt {
		ck.DirtyPages = append(ck.DirtyPages, wal.DirtyPage{ID: id, RecLSN: wal.LSN(recLSN)})
	}
	sort.Slice(ck.DirtyPages, func(i, j int) bool { return ck.DirtyPages[i].ID < ck.DirtyPages[j].ID })
	lsn, err := db.log.Append(&wal.Record{Type: wal.TypeCheckpoint, Blob: ck.Marshal()})
	if err != nil {
		db.degradeIf(err)
		return err
	}
	if err := db.log.SetCheckpoint(lsn); err != nil {
		db.degradeIf(err)
		return err
	}
	// Reclaim dead log segments: everything below the redo scan start is
	// unreachable by recovery, but live transactions may still walk their
	// PrevLSN chains back for undo, so the floor also covers their first
	// records. This is how a full disk gets space back.
	bound := ck.RedoScanStart(lsn)
	if undoFloor != 0 && undoFloor < bound {
		bound = undoFloor
	}
	if !db.opts.RetainWAL {
		// Open base snapshots pin the chain too: a follower seeded from one
		// still needs the log suffix from its LogStart. Holding retainMu
		// across the truncation closes the race against a snapshot
		// registering its floor concurrently.
		db.retainMu.Lock()
		for _, f := range db.retainFloors {
			if f < bound {
				bound = f
			}
		}
		if err := db.log.TruncateBefore(bound); err != nil {
			// Reclamation is best-effort: the retained segments are merely
			// dead weight, so a failed delete degrades nothing and fails
			// nothing.
			obsCkptTruncErr.Inc()
		}
		db.retainMu.Unlock()
	}
	// GC with the new redo scan start point.
	if _, err := db.stamp.RunGC(ck.RedoScanStart(lsn)); err != nil {
		db.degradeIf(err)
		return err
	}
	if err := db.stamp.SyncPTT(); err != nil {
		db.degradeIf(err)
		return err
	}
	return nil
}

// Close shuts the database down cleanly: new Begin calls fail with
// ErrShuttingDown, in-flight transaction operations are waited out (bounded
// by Options.DrainTimeout) so an acknowledged commit is never raced by the
// file teardown, transactions left open are rolled back on their owners'
// behalf, and the final checkpoint and file closes run against a quiesced
// engine.
func (db *DB) Close() error {
	// Stop the background compactor first: it takes db.mu and appends to the
	// log, so it must be parked before the drain and the final checkpoint.
	db.stopCompactor()
	db.mu.Lock()
	if db.closed || db.draining {
		db.mu.Unlock()
		return nil
	}
	db.draining = true
	// Kill every open transaction: its next operation returns ErrAborted.
	// Operations already past opEnter finish normally — including commits,
	// whose acknowledgements stay trustworthy.
	for _, tx := range db.active {
		tx.killed.Store(true)
	}
	grace := db.opts.DrainTimeout
	if grace <= 0 {
		grace = DefaultDrainTimeout
	}
	deadline := time.Now().Add(grace)
	var timer *time.Timer
	if db.opCount > 0 {
		timer = time.AfterFunc(grace, func() {
			db.mu.Lock()
			db.opDone.Broadcast()
			db.mu.Unlock()
		})
	}
	for db.opCount > 0 && time.Now().Before(deadline) {
		db.opDone.Wait()
	}
	if timer != nil {
		timer.Stop()
	}
	drained := db.opCount == 0
	victims := make([]*Tx, 0, len(db.active))
	for _, tx := range db.active {
		victims = append(victims, tx)
	}
	db.mu.Unlock()
	// Transactions left open after the drain have no operation in flight, so
	// rolling them back here cannot race their owners: opEnter now fails on
	// the killed flag. If the drain timed out we skip this — the checkpoint
	// lists the stragglers in its ATT and recovery undoes them instead.
	if drained {
		for _, tx := range victims {
			db.abortForShutdown(tx)
		}
	}
	// A degraded engine skips the final checkpoint and log flush: disk state
	// after the failed I/O is untrustworthy, and writing more would risk
	// claiming durability recovery cannot honor. Reopen recovers from the
	// last successfully-synced log prefix instead. A replica has no
	// checkpoint to take — it just hardens what it has ingested so the next
	// open's recovery scan starts from durable bytes.
	err := db.Degraded()
	if err == nil {
		if db.replica.Load() {
			err = db.log.SyncIngested()
		} else {
			err = db.Checkpoint()
		}
	}
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	if db.Degraded() == nil {
		if err2 := db.log.Flush(); err == nil {
			err = err2
		}
	}
	if db.Degraded() != nil {
		// No PTT commit either: a mapping must never harden unless its commit
		// record is known durable, and after a failed sync nothing is.
		db.ptt.CloseNoCommit()
	} else if err2 := db.ptt.Close(); err == nil {
		err = err2
	}
	if err2 := db.log.Close(); err == nil {
		err = err2
	}
	if err2 := db.pager.Close(); err == nil {
		err = err2
	}
	db.hist.Close()
	return err
}

// abortForShutdown rolls back a transaction left open at Close on its
// owner's behalf. The owner cannot interfere: the killed flag turns its next
// operation into ErrAborted before it touches engine state. Undo runs under
// commitMu exactly like Rollback, so the compensation is atomic with respect
// to the final checkpoint's ATT snapshot.
func (db *DB) abortForShutdown(tx *Tx) {
	if tx.mode == asOf || tx.terminalLogged {
		db.finish(tx)
		return
	}
	db.commitMu.Lock()
	last := wal.LSN(tx.lastLSN.Load())
	if err := db.undoTx(tx.id, last); err != nil {
		// Compensation failed (I/O error): leave the transaction in the
		// active map so the checkpoint's ATT lists it and recovery undoes
		// its updates at the next open.
		db.degradeIf(err)
		db.commitMu.Unlock()
		return
	}
	tx.terminalLogged = true
	db.log.Append(&wal.Record{Type: wal.TypeAbort, TID: tx.id, PrevLSN: last})
	db.stamp.Abort(tx.id)
	db.commitMu.Unlock()
	db.aborts.Add(1)
	db.finish(tx)
}

// Stats aggregates engine counters for benchmarks and monitoring — the feed
// for immortald's /metrics endpoint.
type Stats struct {
	Commits, Aborts uint64
	// OpenTxns counts transactions currently active.
	OpenTxns int
	Stamp    stamp.Stats
	// VTTBacklog is the volatile timestamp table's entry count: commits
	// whose versions still await lazy timestamping (plus active writers).
	VTTBacklog int
	PTTEntries uint64
	LogBytes   int64
	// LogAppends and LogSyncs count log records appended and fsyncs issued;
	// GroupedCommits counts commit hardenings satisfied by another
	// committer's fsync — the group-commit batching win.
	LogAppends     uint64
	LogSyncs       uint64
	GroupedCommits uint64
	PagerReads     uint64
	PagerWrites    uint64
	CacheHits      uint64
	CacheMisses    uint64
	// TimeSplits, KeySplits and ChainHops aggregate tree activity across
	// all tables.
	TimeSplits uint64
	KeySplits  uint64
	ChainHops  uint64
	// Degraded reports that an I/O failure moved the engine read-only (see
	// ErrDegraded); WALSegments counts live log segment files.
	Degraded    bool
	WALSegments int
	// Cold history tier: live run files and their byte total, history pages
	// migrated into runs, and completed CompactHistory passes.
	HistRuns        int
	HistBytes       uint64
	PagesMigrated   uint64
	HistCompactions uint64
}

// MeanCommitBatch estimates the mean group-commit batch size: every fsync
// hardens one leader plus the followers that shared it.
func (s Stats) MeanCommitBatch() float64 {
	if s.LogSyncs == 0 {
		return 0
	}
	return 1 + float64(s.GroupedCommits)/float64(s.LogSyncs)
}

// Stats returns a snapshot of engine counters.
func (db *DB) Stats() Stats {
	r, w, _ := db.pager.Stats()
	h, m, _, _ := db.pool.Stats()
	appends, syncs := db.log.Stats()
	st := Stats{
		Commits:         db.commits.Load(),
		Aborts:          db.aborts.Load(),
		Stamp:           db.stamp.Snapshot(),
		VTTBacklog:      db.stamp.VTTLen(),
		PTTEntries:      db.stamp.PTTLen(),
		LogBytes:        db.log.Size(),
		LogAppends:      appends,
		LogSyncs:        syncs,
		GroupedCommits:  db.log.GroupedSyncs(),
		PagerReads:      r,
		PagerWrites:     w,
		CacheHits:       h,
		CacheMisses:     m,
		Degraded:        db.degraded.Load(),
		WALSegments:     db.log.SegmentCount(),
		PagesMigrated:   db.pagesMigrated.Load(),
		HistCompactions: db.histCompactions.Load(),
	}
	st.HistRuns, st.HistBytes = db.hist.Totals()
	db.mu.Lock()
	st.OpenTxns = len(db.active)
	for _, t := range db.trees {
		ts := t.Snapshot()
		st.TimeSplits += ts.TimeSplits
		st.KeySplits += ts.KeySplits
		st.ChainHops += ts.ChainHops
	}
	db.mu.Unlock()
	return st
}

// TreeStats returns split/chain counters for one table.
func (db *DB) TreeStats(t *Table) tsb.Stats { return t.tree.Snapshot() }

// crash closes the database files abruptly — no checkpoint, no buffer-pool
// flush, no PTT commit, buffered log appends dropped. It simulates a process
// crash so recovery tests can reopen and verify the ARIES passes and the
// lazy re-timestamping behaviour. Production code uses Close.
func (db *DB) crash() {
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	db.ptt.CloseNoCommit()
	db.log.CloseNoFlush()
	db.pager.Close()
}

// Meta exposes the table's catalog entry (schema, flags) to the SQL layer.
func (t *Table) Meta() *catalog.Table { return t.meta }

// EnableSnapshot turns on snapshot versioning for an empty conventional
// table — the engine-level ALTER TABLE ... ENABLE SNAPSHOT of Section 4.1.
func (db *DB) EnableSnapshot(name string) error {
	if db.replica.Load() {
		return ErrReplica
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.draining {
		return ErrShuttingDown
	}
	if err := db.Degraded(); err != nil {
		return err
	}
	meta, err := db.cat.Get(name)
	if err != nil {
		return err
	}
	if meta.Versioned() {
		return nil
	}
	// Record layouts differ (no versioning tails), so only empty tables can
	// switch.
	empty := true
	tree := db.trees[meta.ID]
	if err := tree.ScanAsOf(nil, nil, itime.Max, 0, func(tsb.Result) bool {
		empty = false
		return false
	}); err != nil {
		return err
	}
	if err := db.cat.EnableSnapshot(name, empty); err != nil {
		return err
	}
	// Reopen the tree with versioned semantics.
	db.trees[meta.ID] = db.openTree(meta)
	if err := db.logCatalog(); err != nil {
		db.degradeIf(err)
		return err
	}
	if err := db.saveCatalogMeta(); err != nil {
		db.degradeIf(err)
		return err
	}
	return nil
}

// BeginAsOfString parses a SQL AS OF time literal and begins a historical
// read-only transaction at it.
func (db *DB) BeginAsOfString(s string) (*Tx, error) {
	ts, err := itime.ParseAsOf(s)
	if err != nil {
		return nil, err
	}
	return db.BeginAsOfTS(ts)
}

// TableUtilization reports storage occupancy of one table's tree.
func (db *DB) TableUtilization(t *Table) (tsb.Utilization, error) {
	return t.tree.Utilization()
}
