// Quickstart: open an Immortal DB database, create a transaction-time
// table, update it, and query the past.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"immortaldb"
)

func main() {
	dir, err := os.MkdirTemp("", "immortaldb-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Open a database. The zero options give durable commits, 8 KB pages
	// and the paper's chain-based historical access.
	db, err := immortaldb.Open(dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// An IMMORTAL table never forgets: updates and deletes add versions.
	cities, err := db.CreateTable("cities", immortaldb.TableOptions{Immortal: true})
	if err != nil {
		log.Fatal(err)
	}

	// Writes happen in transactions; Update is the commit-on-success helper.
	if err := db.Update(func(tx *immortaldb.Tx) error {
		return tx.Set(cities, []byte("lisbon"), []byte("population=560k"))
	}); err != nil {
		log.Fatal(err)
	}
	beforeGrowth := time.Now()

	time.Sleep(50 * time.Millisecond) // let the 20ms-resolution clock tick
	if err := db.Update(func(tx *immortaldb.Tx) error {
		return tx.Set(cities, []byte("lisbon"), []byte("population=570k"))
	}); err != nil {
		log.Fatal(err)
	}

	// The current state.
	db.View(func(tx *immortaldb.Tx) error {
		v, _, _ := tx.Get(cities, []byte("lisbon"))
		fmt.Printf("now:        lisbon -> %s\n", v)
		return nil
	})

	// The past, via an AS OF transaction (Section 4.2 of the paper).
	old, err := db.BeginAsOf(beforeGrowth)
	if err != nil {
		log.Fatal(err)
	}
	v, _, _ := old.Get(cities, []byte("lisbon"))
	fmt.Printf("as of %s: lisbon -> %s\n", beforeGrowth.Format("15:04:05"), v)
	old.Commit()

	// Or the record's whole history — time travel.
	hist, err := db.History(cities, []byte("lisbon"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("history (newest first):")
	for _, h := range hist {
		fmt.Printf("  %s  %s\n", h.Time.Format("15:04:05.000"), h.Value)
	}
}
