// Snapshot isolation demo: "with snapshot isolation, reads are not blocked
// by concurrent updates — a reader reads a recent version instead of waiting
// for access to the current version" (paper, Section 1).
//
// A writer keeps transferring units between two counters while a snapshot
// reader repeatedly checks the invariant a+b == 100. Under snapshot
// isolation the reader never blocks and never observes a broken invariant;
// the demo also shows first-committer-wins aborting a conflicting snapshot
// writer.
//
//	go run ./examples/snapshotdemo
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"strconv"
	"sync"

	"immortaldb"
)

func main() {
	dir, err := os.MkdirTemp("", "immortaldb-snapshot")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := immortaldb.Open(dir, &immortaldb.Options{NoSync: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("counters", immortaldb.TableOptions{Immortal: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Update(func(tx *immortaldb.Tx) error {
		if err := tx.Set(tbl, []byte("a"), num(60)); err != nil {
			return err
		}
		return tx.Set(tbl, []byte("b"), num(40))
	}); err != nil {
		log.Fatal(err)
	}

	// Writer: move one unit a->b per transaction, 500 times.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			err := db.Update(func(tx *immortaldb.Tx) error {
				a, _, err := tx.Get(tbl, []byte("a"))
				if err != nil {
					return err
				}
				b, _, err := tx.Get(tbl, []byte("b"))
				if err != nil {
					return err
				}
				if err := tx.Set(tbl, []byte("a"), num(parse(a)-1)); err != nil {
					return err
				}
				return tx.Set(tbl, []byte("b"), num(parse(b)+1))
			})
			if err != nil {
				log.Fatal(err)
			}
		}
	}()

	// Reader: snapshot transactions observing the invariant, concurrently.
	checks, violations := 0, 0
	for i := 0; i < 200; i++ {
		tx, err := db.Begin(immortaldb.SnapshotIsolation)
		if err != nil {
			log.Fatal(err)
		}
		a, _, _ := tx.Get(tbl, []byte("a"))
		b, _, _ := tx.Get(tbl, []byte("b"))
		tx.Commit()
		checks++
		if parse(a)+parse(b) != 100 {
			violations++
		}
	}
	wg.Wait()
	fmt.Printf("snapshot reads: %d consistency checks, %d violations\n", checks, violations)

	// First committer wins: two snapshot writers race on the same record.
	t1, _ := db.Begin(immortaldb.SnapshotIsolation)
	t2, _ := db.Begin(immortaldb.SnapshotIsolation)
	if err := t1.Set(tbl, []byte("a"), num(1)); err != nil {
		log.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		log.Fatal(err)
	}
	err = t2.Set(tbl, []byte("a"), num(2))
	switch {
	case errors.Is(err, immortaldb.ErrWriteConflict):
		fmt.Println("second writer: aborted with ErrWriteConflict (first committer wins)")
		t2.Rollback()
	case err == nil:
		fmt.Println("UNEXPECTED: second writer succeeded")
	default:
		log.Fatal(err)
	}

	// Epilogue: the reader's snapshots live on as queryable history.
	hist, err := db.History(tbl, []byte("a"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counter 'a' accumulated %d immortal versions along the way\n", len(hist))
}

func num(n int) []byte { return []byte(strconv.Itoa(n)) }

func parse(b []byte) int {
	n, _ := strconv.Atoi(string(b))
	return n
}
