// Bank audit: the data-auditing scenario of the paper's introduction — "a
// bank finds it useful to keep previous states of the database to check that
// account balances are correct and to provide customers with a detailed
// history of their account."
//
// The example posts transfers between accounts, then (a) audits that every
// historical state conserves total money, and (b) prints one customer's
// statement reconstructed purely from AS OF queries.
//
//	go run ./examples/bankaudit
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"immortaldb"
)

var accounts = []string{"alice", "bob", "carol"}

func main() {
	dir, err := os.MkdirTemp("", "immortaldb-bankaudit")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := immortaldb.Open(dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	tbl, err := db.CreateTable("balances", immortaldb.TableOptions{Immortal: true})
	if err != nil {
		log.Fatal(err)
	}

	// Open the accounts with 100 each.
	if err := db.Update(func(tx *immortaldb.Tx) error {
		for _, a := range accounts {
			if err := tx.Set(tbl, []byte(a), amount(100)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// A day of transfers; remember each posting time.
	transfers := []struct {
		from, to string
		n        int
	}{
		{"alice", "bob", 30},
		{"bob", "carol", 55},
		{"carol", "alice", 10},
		{"alice", "carol", 25},
		{"bob", "alice", 5},
	}
	var postTimes []immortaldb.Timestamp
	for _, tr := range transfers {
		err := db.Update(func(tx *immortaldb.Tx) error {
			if err := move(tx, tbl, tr.from, -tr.n); err != nil {
				return err
			}
			return move(tx, tbl, tr.to, +tr.n)
		})
		if err != nil {
			log.Fatal(err)
		}
		postTimes = append(postTimes, db.Now())
	}

	// Audit: at EVERY posted state the books must balance. Because each
	// transfer is one transaction, no AS OF time can ever observe money in
	// flight.
	fmt.Println("audit: total balance at every historical state")
	for i, at := range postTimes {
		tx, err := db.BeginAsOfTS(at)
		if err != nil {
			log.Fatal(err)
		}
		total := 0
		for _, a := range accounts {
			v, ok, err := tx.Get(tbl, []byte(a))
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				total += parse(v)
			}
		}
		tx.Commit()
		status := "OK"
		if total != 300 {
			status = "VIOLATION"
		}
		fmt.Printf("  after transfer %d: total=%d  %s\n", i+1, total, status)
	}

	// Customer statement: alice's balance over time, from History.
	hist, err := db.History(tbl, []byte("alice"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstatement for alice (oldest first):")
	for i := len(hist) - 1; i >= 0; i-- {
		h := hist[i]
		fmt.Printf("  %s  balance %s\n", h.Time.Format("15:04:05.000"), h.Value)
	}
}

func move(tx *immortaldb.Tx, tbl *immortaldb.Table, account string, delta int) error {
	v, ok, err := tx.Get(tbl, []byte(account))
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("no account %s", account)
	}
	return tx.Set(tbl, []byte(account), amount(parse(v)+delta))
}

func amount(n int) []byte { return []byte(strconv.Itoa(n)) }

func parse(b []byte) int {
	n, _ := strconv.Atoi(string(b))
	return n
}
