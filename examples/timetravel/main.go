// Time travel over moving objects: the location-aware-services scenario of
// the paper's introduction ("keeping historical data supports tracing the
// trajectory of moving objects"), driven through the SQL layer with the
// paper's own MovingObjects schema and AS OF syntax.
//
//	go run ./examples/timetravel
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"immortaldb"
	"immortaldb/internal/itime"
	"immortaldb/internal/sqlish"
)

func main() {
	dir, err := os.MkdirTemp("", "immortaldb-timetravel")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A simulated clock makes the demo's timestamps reproducible.
	clock := itime.NewSimClock(time.Date(2004, 8, 12, 10, 15, 0, 0, time.UTC))
	db, err := immortaldb.Open(dir, &immortaldb.Options{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	sess := sqlish.NewSession(db)
	defer sess.Close()

	exec := func(sql string) *sqlish.Result {
		r, err := sess.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return r
	}

	// The paper's Section 4.1 table.
	exec(`Create IMMORTAL Table MovingObjects
	      (Oid smallint PRIMARY KEY, LocationX int, LocationY int) ON [PRIMARY]`)

	// Vehicle 7 drives across town, sending an update every "10 seconds".
	route := [][2]int{{100, 100}, {140, 120}, {180, 160}, {220, 160}, {260, 200}}
	exec(fmt.Sprintf("INSERT INTO MovingObjects VALUES (7, %d, %d)", route[0][0], route[0][1]))
	for _, p := range route[1:] {
		clock.Advance(10 * time.Second)
		exec(fmt.Sprintf("UPDATE MovingObjects SET LocationX = %d, LocationY = %d WHERE Oid = 7", p[0], p[1]))
	}

	// Where was vehicle 7 at 10:15:20? The paper's AS OF query form.
	exec(`Begin Tran AS OF "2004-08-12 10:15:20"`)
	r := exec("SELECT LocationX, LocationY FROM MovingObjects WHERE Oid = 7")
	exec("Commit Tran")
	fmt.Printf("vehicle 7 as of 10:15:20 -> (%s, %s)\n", r.Rows[0][0], r.Rows[0][1])

	// The full trajectory via the time-travel statement.
	r = exec("SHOW HISTORY FOR MovingObjects WHERE Oid = 7")
	fmt.Println("\ntrajectory (newest first):")
	for _, row := range r.Rows {
		fmt.Printf("  %-32s (%s, %s)\n", row[0], row[3], row[4])
	}

	// And the equivalent through the Go API.
	tbl, err := db.Table("MovingObjects")
	if err != nil {
		log.Fatal(err)
	}
	key := []byte{0x80, 7} // order-preserving SMALLINT encoding of 7
	hist, err := db.History(tbl, key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGo API: History() returned %d versions; oldest at %s\n",
		len(hist), hist[len(hist)-1].Time.Format("15:04:05"))
}
