package immortaldb

// AS OF boundary semantics, pinned with a fully deterministic clock:
//
//   - a query exactly AT a commit timestamp sees that commit (inclusive);
//   - commits sharing one 20 ms wall tick are distinguished by the sequence
//     number, and an AS OF between two same-tick commits sees exactly the
//     earlier one;
//   - an AS OF before the first commit sees an empty table (not an error);
//
// and all of the above survive a close/reopen cycle (recovery rebuilds the
// same history).

import (
	"testing"
	"time"

	"immortaldb/internal/itime"
)

func commitKV(t *testing.T, db *DB, tbl *Table, key, val string) Timestamp {
	t.Helper()
	if err := db.Update(func(tx *Tx) error {
		return tx.Set(tbl, []byte(key), []byte(val))
	}); err != nil {
		t.Fatal(err)
	}
	return db.Now()
}

func stateAsOf(t *testing.T, db *DB, tbl *Table, at Timestamp) map[string]string {
	t.Helper()
	tx, err := db.BeginAsOfTS(at)
	if err != nil {
		t.Fatalf("BeginAsOfTS(%v): %v", at, err)
	}
	defer tx.Commit()
	got := map[string]string{}
	if err := tx.Scan(tbl, nil, nil, func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatalf("Scan AS OF %v: %v", at, err)
	}
	return got
}

func wantState(t *testing.T, db *DB, tbl *Table, at Timestamp, label string, want map[string]string) {
	t.Helper()
	got := stateAsOf(t, db, tbl, at)
	if len(got) != len(want) {
		t.Fatalf("%s (AS OF %v): got %v, want %v", label, at, got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s (AS OF %v): key %s = %q, want %q", label, at, k, got[k], v)
		}
	}
}

func TestAsOfBoundaries(t *testing.T) {
	dir := t.TempDir()
	// No AutoStep: the clock moves only when the test says so, making every
	// commit timestamp — wall tick AND sequence number — predictable.
	clock := itime.NewSimClock(time.Date(2004, 8, 12, 10, 0, 0, 0, time.UTC))
	opts := testOpts(func(o *Options) { o.Clock = clock })

	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t", TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}

	// a and b commit inside one wall tick; c lands on a later tick.
	tsA := commitKV(t, db, tbl, "k", "a")
	tsB := commitKV(t, db, tbl, "k", "b")
	clock.Advance(5 * itime.TickDuration)
	tsC := commitKV(t, db, tbl, "k", "c")

	if tsA.Wall != tsB.Wall {
		t.Fatalf("setup: a (%v) and b (%v) were meant to share a wall tick", tsA, tsB)
	}
	if tsB.Seq != tsA.Seq+1 {
		t.Fatalf("setup: same-tick commits must differ by one sequence number: %v then %v", tsA, tsB)
	}
	if tsC.Wall <= tsB.Wall || tsC.Seq != 0 {
		t.Fatalf("setup: c (%v) was meant to start a fresh tick after %v", tsC, tsB)
	}

	check := func(db *DB, tbl *Table) {
		// Exactly at each commit timestamp: inclusive.
		wantState(t, db, tbl, tsA, "at first commit", map[string]string{"k": "a"})
		wantState(t, db, tbl, tsB, "at same-tick successor", map[string]string{"k": "b"})
		wantState(t, db, tbl, tsC, "at later-tick commit", map[string]string{"k": "c"})
		// Between the same-tick pair there is no representable timestamp
		// (they differ by exactly one sequence number); between b and c there
		// are both same-tick (higher Seq) and later-tick instants.
		wantState(t, db, tbl, Timestamp{Wall: tsB.Wall, Seq: tsB.Seq + 9}, "same tick after b", map[string]string{"k": "b"})
		wantState(t, db, tbl, Timestamp{Wall: tsC.Wall - 1, Seq: 0}, "tick before c", map[string]string{"k": "b"})
		// Before the first commit: an empty table, not an error.
		wantState(t, db, tbl, Timestamp{Wall: tsA.Wall - 1, Seq: 0}, "before first commit", map[string]string{})
		wantState(t, db, tbl, Timestamp{Wall: tsA.Wall, Seq: 0}, "first instant of first tick", map[string]string{"k": "a"})
	}
	check(db, tbl)

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err = db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	check(db, tbl)
}
