package immortaldb_test

// The error-persistence matrix: the crash matrix's sibling for disks that
// fail WITHOUT stopping the machine. Each cell arms one sustained fault —
// EIO on WAL segments, the page file or the timestamp table, ENOSPC on
// writes or preallocation, failing (and lying, fsyncgate-style) fsyncs,
// read errors — at a chosen I/O operation index, persisting for a chosen
// number of operations or forever. The engine must contain every cell:
// no acked commit lost, the unacked one all-or-nothing, reads served while
// degraded, writes refused with ErrDegraded before any acknowledgement.
//
// A failing cell is a replayable coordinate:
//
//	go test -run TestPersistMatrix -pseed=<S> -pkind=<K> -ppoint=<N> -ppersist=<P>

import (
	"errors"
	"flag"
	"fmt"
	"sync/atomic"
	"testing"

	"immortaldb"
	"immortaldb/internal/fault"
	"immortaldb/internal/storage/vfs"
)

var (
	persistSeed  = flag.Int64("pseed", 1, "persistence-matrix workload seed")
	persistKind  = flag.String("pkind", "", "replay a single cell: fault kind name (empty = full matrix)")
	persistPoint = flag.Int64("ppoint", 0, "replay: I/O operation index at which the fault starts")
	persistLen   = flag.Int64("ppersist", 1, "replay: failing operations before the fault clears (-1 = never)")
)

// minPersistCells is the floor for the full grid: the matrix is only an
// error-persistence sweep if fault kinds × start points × persistence
// lengths actually multiply out.
const minPersistCells = 200

func runPersistCell(t *testing.T, seed int64, kind fault.PersistKind, startOp, persist int64) *fault.PersistResult {
	t.Helper()
	f := kind.Fault
	f.StartOp = startOp
	f.Count = persist
	res := fault.RunPersist(fault.PersistConfig{Seed: seed, Fault: f})
	if err := fault.VerifyPersist(res); err != nil {
		t.Fatalf("%v\n%s", err, fault.DescribePersist(res, kind.Name))
	}
	return res
}

func TestPersistMatrix(t *testing.T) {
	if *persistKind != "" {
		kind, ok := fault.KindByName(*persistKind)
		if !ok {
			t.Fatalf("unknown -pkind %q", *persistKind)
		}
		runPersistCell(t, *persistSeed, kind, *persistPoint, *persistLen)
		return
	}

	// Baseline without a fault: must run clean, and its I/O operation count
	// calibrates where the matrix places fault start points.
	base := fault.RunPersist(fault.PersistConfig{Seed: *persistSeed})
	if err := fault.VerifyPersist(base); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if !base.Clean {
		t.Fatalf("baseline workload did not finish clean: %+v", base)
	}
	total := base.FS.IOOpCount()
	if total < 100 {
		t.Fatalf("baseline generated only %d I/O ops; matrix would be vacuous", total)
	}

	starts := int64(9)
	persists := []int64{1, 4, -1}
	if testing.Short() {
		starts = 3
		persists = []int64{1, -1}
	}
	cells := 0
	var degraded, clean atomic.Int64
	for _, kind := range fault.PersistKinds {
		kind := kind
		for s := int64(0); s < starts; s++ {
			// Start points sample the whole workload, open included.
			startOp := s*total/starts + 1
			for _, p := range persists {
				p := p
				cells++
				name := fmt.Sprintf("%s/op%d/n%d", kind.Name, startOp, p)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					res := runPersistCell(t, *persistSeed, kind, startOp, p)
					if res.Degraded {
						degraded.Add(1)
					}
					if res.Clean {
						clean.Add(1)
					}
				})
			}
		}
	}
	if !testing.Short() && cells < minPersistCells {
		t.Errorf("matrix swept only %d cells, want >= %d", cells, minPersistCells)
	}
	// Runs after every parallel cell: the grid must actually bite. Every
	// permanent fault that starts inside the workload should degrade the
	// engine, and some transient ones should be survived outright.
	t.Cleanup(func() {
		t.Logf("persistence matrix: %d cells, %d degraded, %d clean", cells, degraded.Load(), clean.Load())
		if d := degraded.Load(); d < int64(cells)/4 {
			t.Errorf("only %d/%d cells degraded the engine; the faults are not biting", d, cells)
		}
		if clean.Load() == 0 {
			t.Errorf("no cell survived its transient fault cleanly; persistence clearing is not exercised")
		}
	})
}

// openSim opens a database on fs with the small-geometry test options.
func openSim(t *testing.T, fs *vfs.SimFS) *immortaldb.DB {
	t.Helper()
	db, err := immortaldb.Open("faultdb", &immortaldb.Options{
		PageSize:       1024,
		CacheFrames:    8,
		FS:             fs,
		FullPageWrites: true,
		WALSegmentSize: 4096,
		WALLowWater:    8192,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return db
}

func set(db *immortaldb.DB, tbl *immortaldb.Table, k, v string) error {
	return db.Update(func(tx *immortaldb.Tx) error {
		return tx.Set(tbl, []byte(k), []byte(v))
	})
}

func get(t *testing.T, db *immortaldb.DB, tbl *immortaldb.Table, k string) (string, bool) {
	t.Helper()
	var val string
	var ok bool
	err := db.View(func(tx *immortaldb.Tx) error {
		v, found, err := tx.Get(tbl, []byte(k))
		val, ok = string(v), found
		return err
	})
	if err != nil {
		t.Fatalf("get %q: %v", k, err)
	}
	return val, ok
}

// TestFsyncGateNeverRetry pins the fsyncgate policy end to end: after a
// failed WAL fsync silently drops the dirty pages (as several kernels do),
// the engine must NOT retry the fsync, must not acknowledge the commit, must
// degrade so every later write fails typed before any ack, and after a crash
// and reopen the un-acked commit must be fully absent while everything acked
// before the fault survives.
func TestFsyncGateNeverRetry(t *testing.T) {
	fs := vfs.NewSim(7)
	db := openSim(t, fs)
	tbl, err := db.CreateTable("t", immortaldb.TableOptions{Immortal: true})
	if err != nil {
		t.Fatalf("create table: %v", err)
	}
	if err := set(db, tbl, "a", "acked"); err != nil {
		t.Fatalf("baseline commit: %v", err)
	}

	fs.InjectFault(vfs.Fault{
		Op: vfs.OpSync, File: "wal.log.", Count: 1, DropDirty: true,
	})
	err = set(db, tbl, "b", "dropped")
	if err == nil {
		t.Fatal("commit acknowledged over a failed fsync")
	}
	if db.Degraded() == nil {
		t.Fatal("engine not degraded after a failed WAL fsync")
	}

	// The fault has cleared (Count: 1): a retried fsync would now "succeed"
	// without the dropped pages ever reaching disk. The engine must refuse
	// instead of retrying and trusting it.
	if err := set(db, tbl, "c", "after"); !errors.Is(err, immortaldb.ErrDegraded) {
		t.Fatalf("write after failed fsync returned %v, want ErrDegraded", err)
	}
	if v, ok := get(t, db, tbl, "a"); !ok || v != "acked" {
		t.Fatalf("read while degraded: a=%q,%v, want acked,true", v, ok)
	}
	db.Close()

	fs.Crash()
	fs.Reboot()
	db2 := openSim(t, fs)
	defer db2.Close()
	tbl2, err := db2.Table("t")
	if err != nil {
		t.Fatalf("table after recovery: %v", err)
	}
	if v, ok := get(t, db2, tbl2, "a"); !ok || v != "acked" {
		t.Fatalf("acked commit lost: a=%q,%v", v, ok)
	}
	if _, ok := get(t, db2, tbl2, "b"); ok {
		t.Fatal("un-acked commit surfaced after recovery despite dropped fsync")
	}
	if _, ok := get(t, db2, tbl2, "c"); ok {
		t.Fatal("write refused with ErrDegraded still reached disk")
	}
	if err := set(db2, tbl2, "sentinel", "alive"); err != nil {
		t.Fatalf("recovered engine refused a commit: %v", err)
	}
}

// TestENOSPCEscape fills a small disk with WAL until the engine degrades
// with ENOSPC, then proves the escape hatch: reopening runs recovery plus a
// checkpoint whose record is exempt from the low-water gate, which moves the
// reclamation bound, truncates the dead segments, and leaves the engine
// committing again on the very same (still small) disk.
func TestENOSPCEscape(t *testing.T) {
	fs := vfs.NewSim(11)
	// The low-water mark is the escape's enabler: degradation fires while
	// there is still headroom for reopen-time recovery (which re-stamps and
	// so grows the PTT) plus the exempted checkpoint record.
	openSmall := func() *immortaldb.DB {
		db, err := immortaldb.Open("faultdb", &immortaldb.Options{
			PageSize:       1024,
			CacheFrames:    8,
			FS:             fs,
			FullPageWrites: true,
			WALSegmentSize: 4096,
			WALLowWater:    96 << 10,
		})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return db
	}
	fs.SetCapacity(256 << 10)
	db := openSmall()
	tbl, err := db.CreateTable("t", immortaldb.TableOptions{Immortal: true})
	if err != nil {
		t.Fatalf("create table: %v", err)
	}

	// Overwrite a small key set so the page file stays put while the WAL
	// grows without bound (no checkpoints here, so nothing is reclaimed).
	acked := map[string]string{}
	var commitErr error
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("k%02d", i%12)
		v := fmt.Sprintf("v%06d", i)
		if commitErr = set(db, tbl, k, v); commitErr != nil {
			break
		}
		acked[k] = v
	}
	if commitErr == nil {
		t.Fatal("disk never filled; capacity too large for the workload")
	}
	if !errors.Is(commitErr, vfs.ErrNoSpace) {
		t.Fatalf("fill-phase commit failed with %v, want ENOSPC", commitErr)
	}
	if db.Degraded() == nil {
		t.Fatal("engine not degraded after ENOSPC")
	}
	if err := set(db, tbl, "probe", "x"); !errors.Is(err, immortaldb.ErrDegraded) {
		t.Fatalf("write on full disk returned %v, want ErrDegraded", err)
	}
	segsBefore := db.Stats().WALSegments
	db.Close()

	// Same disk, same capacity: reopening must recover, checkpoint, truncate
	// the dead segments, and accept new commits.
	db2 := openSmall()
	defer db2.Close()
	if err := db2.Degraded(); err != nil {
		t.Fatalf("reopened engine still degraded: %v", err)
	}
	if segsAfter := db2.Stats().WALSegments; segsAfter >= segsBefore {
		t.Fatalf("truncation freed nothing: %d segments before close, %d after reopen", segsBefore, segsAfter)
	}
	tbl2, err := db2.Table("t")
	if err != nil {
		t.Fatalf("table after recovery: %v", err)
	}
	for k, v := range acked {
		if got, ok := get(t, db2, tbl2, k); !ok || got != v {
			t.Fatalf("acked commit lost across ENOSPC: %s=%q,%v want %q", k, got, ok, v)
		}
	}
	for i := 0; i < 50; i++ {
		if err := set(db2, tbl2, fmt.Sprintf("k%02d", i%12), fmt.Sprintf("post%03d", i)); err != nil {
			t.Fatalf("commit %d after escape failed: %v", i, err)
		}
	}
	if err := db2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after escape: %v", err)
	}
}
