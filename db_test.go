package immortaldb

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"immortaldb/internal/itime"
)

// testClock is a deterministic clock advancing a tick every few reads so the
// sequence-number machinery is exercised.
func testClock() *itime.SimClock {
	c := itime.NewSimClock(time.Date(2004, 8, 12, 10, 0, 0, 0, time.UTC))
	c.AutoStep = 1
	c.AutoEvery = 3
	return c
}

func testOpts(extra func(*Options)) *Options {
	o := &Options{
		PageSize:    1024, // small pages: frequent splits in tests
		CacheFrames: 64,
		NoSync:      true,
		Clock:       testClock(),
	}
	if extra != nil {
		extra(o)
	}
	return o
}

func openTestDB(t *testing.T, extra func(*Options)) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(dir, testOpts(extra))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if !db.closed {
			db.Close()
		}
	})
	return db, dir
}

func set(t *testing.T, db *DB, tbl *Table, key, val string) Timestamp {
	t.Helper()
	tx, err := db.Begin(Serializable)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Set(tbl, []byte(key), []byte(val)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db.Now()
}

func del(t *testing.T, db *DB, tbl *Table, key string) Timestamp {
	t.Helper()
	tx, _ := db.Begin(Serializable)
	if err := tx.Delete(tbl, []byte(key)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db.Now()
}

func get(t *testing.T, tx *Tx, tbl *Table, key string) (string, bool) {
	t.Helper()
	v, ok, err := tx.Get(tbl, []byte(key))
	if err != nil {
		t.Fatal(err)
	}
	return string(v), ok
}

func TestBasicCRUD(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, err := db.CreateTable("objects", TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}
	set(t, db, tbl, "a", "1")
	set(t, db, tbl, "b", "2")
	set(t, db, tbl, "a", "3")

	tx, _ := db.Begin(Serializable)
	if v, ok := get(t, tx, tbl, "a"); !ok || v != "3" {
		t.Fatalf("a = %q, %v", v, ok)
	}
	if v, ok := get(t, tx, tbl, "b"); !ok || v != "2" {
		t.Fatalf("b = %q, %v", v, ok)
	}
	if _, ok := get(t, tx, tbl, "zzz"); ok {
		t.Fatal("ghost key found")
	}
	tx.Commit()

	del(t, db, tbl, "a")
	tx2, _ := db.Begin(Serializable)
	if _, ok := get(t, tx2, tbl, "a"); ok {
		t.Fatal("deleted key still visible")
	}
	tx2.Commit()
}

func TestAsOfQueries(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("objects", TableOptions{Immortal: true})
	t1 := set(t, db, tbl, "car", "pos-1")
	t2 := set(t, db, tbl, "car", "pos-2")
	t3 := del(t, db, tbl, "car")
	t4 := set(t, db, tbl, "car", "pos-3")

	cases := []struct {
		at    Timestamp
		want  string
		found bool
	}{
		{t1, "pos-1", true},
		{t2, "pos-2", true},
		{t3, "", false},
		{t4, "pos-3", true},
	}
	for i, c := range cases {
		tx, err := db.BeginAsOfTS(c.at)
		if err != nil {
			t.Fatal(err)
		}
		v, ok, err := tx.Get(tbl, []byte("car"))
		if err != nil {
			t.Fatal(err)
		}
		if ok != c.found || (ok && string(v) != c.want) {
			t.Fatalf("case %d: got (%q, %v), want (%q, %v)", i, v, ok, c.want, c.found)
		}
		// Writes must be rejected.
		if err := tx.Set(tbl, []byte("x"), []byte("y")); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("write in AS OF tx: %v", err)
		}
		tx.Commit()
	}
	// Before the beginning of time: nothing.
	tx, _ := db.BeginAsOfTS(Timestamp{Wall: 1})
	if _, ok, _ := tx.Get(tbl, []byte("car")); ok {
		t.Fatal("found record before it existed")
	}
	tx.Commit()
}

func TestAsOfWallClockAPI(t *testing.T) {
	clock := testClock()
	db, _ := openTestDB(t, func(o *Options) { o.Clock = clock })
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	set(t, db, tbl, "k", "old")
	tMid := db.Now().Time()
	clock.Advance(time.Second)
	set(t, db, tbl, "k", "new")

	v, ok, err := db.GetAsOf(tbl, []byte("k"), tMid)
	if err != nil || !ok || string(v) != "old" {
		t.Fatalf("GetAsOf(mid) = %q, %v, %v", v, ok, err)
	}
	v, ok, err = db.GetAsOf(tbl, []byte("k"), tMid.Add(2*time.Second))
	if err != nil || !ok || string(v) != "new" {
		t.Fatalf("GetAsOf(now) = %q, %v, %v", v, ok, err)
	}
}

func TestHistoryTimeTravelEngine(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	set(t, db, tbl, "k", "v1")
	set(t, db, tbl, "k", "v2")
	del(t, db, tbl, "k")
	set(t, db, tbl, "k", "v3")

	hist, err := db.History(tbl, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 4 {
		t.Fatalf("history length = %d", len(hist))
	}
	if string(hist[0].Value) != "v3" || hist[0].Deleted {
		t.Fatalf("hist[0] = %+v", hist[0])
	}
	if !hist[1].Deleted {
		t.Fatalf("hist[1] should be the delete: %+v", hist[1])
	}
	if string(hist[2].Value) != "v2" || string(hist[3].Value) != "v1" {
		t.Fatalf("old versions wrong: %+v %+v", hist[2], hist[3])
	}
	// Replaying an exact historical timestamp sees that state.
	tx, _ := db.BeginAsOfTS(hist[2].TS)
	if v, ok := get(t, tx, tbl, "k"); !ok || v != "v2" {
		t.Fatalf("replay hist[2] = %q, %v", v, ok)
	}
	tx.Commit()

	// History on a conventional table fails.
	conv, _ := db.CreateTable("conv", TableOptions{})
	if _, err := db.History(conv, []byte("k")); !errors.Is(err, ErrNotImmortal) {
		t.Fatalf("history on conventional table: %v", err)
	}
}

func TestRollback(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	set(t, db, tbl, "stable", "yes")

	tx, _ := db.Begin(Serializable)
	tx.Set(tbl, []byte("stable"), []byte("overwritten"))
	tx.Set(tbl, []byte("fresh"), []byte("doomed"))
	tx.Delete(tbl, []byte("stable"))
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	tx2, _ := db.Begin(Serializable)
	if v, ok := get(t, tx2, tbl, "stable"); !ok || v != "yes" {
		t.Fatalf("stable = %q, %v after rollback", v, ok)
	}
	if _, ok := get(t, tx2, tbl, "fresh"); ok {
		t.Fatal("rolled-back insert visible")
	}
	tx2.Commit()
	// History must contain no trace of the rolled-back writes.
	hist, _ := db.History(tbl, []byte("stable"))
	if len(hist) != 1 {
		t.Fatalf("history after rollback = %+v", hist)
	}
}

func TestUpdateViewHelpers(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	if err := db.Update(func(tx *Tx) error {
		return tx.Set(tbl, []byte("k"), []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		v, ok, err := tx.Get(tbl, []byte("k"))
		if err != nil || !ok || string(v) != "v" {
			return fmt.Errorf("got %q %v %v", v, ok, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Errors roll back.
	boom := errors.New("boom")
	err := db.Update(func(tx *Tx) error {
		tx.Set(tbl, []byte("k"), []byte("never"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	db.View(func(tx *Tx) error {
		if v, _, _ := tx.Get(tbl, []byte("k")); string(v) != "v" {
			t.Fatalf("k = %q after failed update", v)
		}
		return nil
	})
}

func TestSerializableBlocksConflicts(t *testing.T) {
	db, _ := openTestDB(t, func(o *Options) { o.LockTimeout = 100 * time.Millisecond })
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	set(t, db, tbl, "k", "v0")

	tx1, _ := db.Begin(Serializable)
	if err := tx1.Set(tbl, []byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// A second writer must block and time out.
	tx2, _ := db.Begin(Serializable)
	if err := tx2.Set(tbl, []byte("k"), []byte("v2")); err == nil {
		t.Fatal("conflicting write did not block")
	}
	tx2.Rollback()
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	tx3, _ := db.Begin(Serializable)
	if v, ok := get(t, tx3, tbl, "k"); !ok || v != "v1" {
		t.Fatalf("k = %q, %v", v, ok)
	}
	tx3.Commit()
}

func TestSnapshotIsolationReadsDontBlock(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	set(t, db, tbl, "k", "committed")

	writer, _ := db.Begin(Serializable)
	if err := writer.Set(tbl, []byte("k"), []byte("in-flight")); err != nil {
		t.Fatal(err)
	}
	// Snapshot reader proceeds without waiting and sees the committed state.
	reader, _ := db.Begin(SnapshotIsolation)
	done := make(chan struct{})
	var v string
	var ok bool
	go func() {
		v, ok = get(t, reader, tbl, "k")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("snapshot read blocked on a writer")
	}
	if !ok || v != "committed" {
		t.Fatalf("snapshot read = %q, %v", v, ok)
	}
	writer.Commit()
	// Still the snapshot value, even after the writer commits.
	if v, ok := get(t, reader, tbl, "k"); !ok || v != "committed" {
		t.Fatalf("post-commit snapshot read = %q, %v", v, ok)
	}
	reader.Commit()
}

func TestSnapshotFirstCommitterWins(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	set(t, db, tbl, "k", "v0")

	tx1, _ := db.Begin(SnapshotIsolation)
	tx2, _ := db.Begin(SnapshotIsolation)
	if err := tx1.Set(tbl, []byte("k"), []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	// tx2's snapshot predates tx1's commit: its write must conflict.
	err := tx2.Set(tbl, []byte("k"), []byte("second"))
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("err = %v, want ErrWriteConflict", err)
	}
	tx2.Rollback()
}

func TestSnapshotSeesOwnWrites(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	set(t, db, tbl, "k", "old")
	tx, _ := db.Begin(SnapshotIsolation)
	if err := tx.Set(tbl, []byte("k"), []byte("mine")); err != nil {
		t.Fatal(err)
	}
	if v, ok := get(t, tx, tbl, "k"); !ok || v != "mine" {
		t.Fatalf("own write = %q, %v", v, ok)
	}
	if err := tx.Set(tbl, []byte("new"), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if v, ok := get(t, tx, tbl, "new"); !ok || v != "fresh" {
		t.Fatalf("own insert = %q, %v", v, ok)
	}
	tx.Commit()
}

func TestScanVisibility(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	for i := 0; i < 20; i++ {
		set(t, db, tbl, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i))
	}
	mid := db.Now()
	for i := 0; i < 20; i += 2 {
		del(t, db, tbl, fmt.Sprintf("k%02d", i))
	}

	count := func(tx *Tx) int {
		n := 0
		if err := tx.Scan(tbl, nil, nil, func(k, v []byte) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	tx, _ := db.Begin(Serializable)
	if n := count(tx); n != 10 {
		t.Fatalf("current scan = %d", n)
	}
	tx.Commit()
	old, _ := db.BeginAsOfTS(mid)
	if n := count(old); n != 20 {
		t.Fatalf("as-of scan = %d", n)
	}
	old.Commit()
}

func TestConventionalTable(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, err := db.CreateTable("conv", TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		set(t, db, tbl, fmt.Sprintf("k%03d", i), "v0")
	}
	set(t, db, tbl, "k005", "updated")
	del(t, db, tbl, "k006")

	tx, _ := db.Begin(Serializable)
	if v, ok := get(t, tx, tbl, "k005"); !ok || v != "updated" {
		t.Fatalf("k005 = %q, %v", v, ok)
	}
	if _, ok := get(t, tx, tbl, "k006"); ok {
		t.Fatal("deleted key visible")
	}
	n := 0
	tx.Scan(tbl, nil, nil, func(k, v []byte) bool { n++; return true })
	if n != 99 {
		t.Fatalf("scan = %d", n)
	}
	tx.Commit()
	// AS OF on a conventional table fails.
	old, _ := db.BeginAsOfTS(db.Now())
	if _, _, err := old.Get(tbl, []byte("k005")); !errors.Is(err, ErrNotImmortal) {
		t.Fatalf("as-of on conventional: %v", err)
	}
	old.Commit()
	// Rollback restores old values on conventional tables too.
	txr, _ := db.Begin(Serializable)
	txr.Set(tbl, []byte("k010"), []byte("scratch"))
	txr.Delete(tbl, []byte("k011"))
	txr.Set(tbl, []byte("brandnew"), []byte("x"))
	txr.Rollback()
	tx2, _ := db.Begin(Serializable)
	if v, ok := get(t, tx2, tbl, "k010"); !ok || v != "v0" {
		t.Fatalf("k010 after rollback = %q, %v", v, ok)
	}
	if _, ok := get(t, tx2, tbl, "k011"); !ok {
		t.Fatal("k011 lost after rollback")
	}
	if _, ok := get(t, tx2, tbl, "brandnew"); ok {
		t.Fatal("rolled-back insert visible")
	}
	tx2.Commit()
}

func TestPersistenceAcrossCleanReopen(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(nil)
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	var times []Timestamp
	for i := 0; i < 50; i++ {
		times = append(times, set(t, db, tbl, fmt.Sprintf("k%02d", i%10), fmt.Sprintf("v%d", i)))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db2.Begin(Serializable)
	if v, ok := get(t, tx, tbl2, "k05"); !ok || v != "v45" {
		t.Fatalf("k05 = %q, %v", v, ok)
	}
	tx.Commit()
	// Historical state also survives: just before write 15 (k05 <- v15),
	// k05 still holds v5 from write 5.
	old, _ := db2.BeginAsOfTS(times[14])
	if v, ok := get(t, old, tbl2, "k05"); !ok || v != "v5" {
		t.Fatalf("as-of k05 = %q, %v", v, ok)
	}
	old.Commit()
	// New transactions never reuse timestamps.
	newTS := set(t, db2, tbl2, "k00", "post-reopen")
	if !newTS.After(times[len(times)-1]) {
		t.Fatalf("timestamp went backwards after reopen: %v <= %v", newTS, times[len(times)-1])
	}
}

func TestCrashRecoveryCommittedSurvive(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(nil)
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	var times []Timestamp
	for i := 0; i < 120; i++ { // enough to split pages
		times = append(times, set(t, db, tbl, fmt.Sprintf("k%02d", i%7), fmt.Sprintf("v%d", i)))
	}
	db.crash() // no checkpoint, dirty pages lost, PTT uncommitted

	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, _ := db2.Table("t")
	tx, _ := db2.Begin(Serializable)
	for k := 0; k < 7; k++ {
		key := fmt.Sprintf("k%02d", k)
		wantIdx := -1
		for i := 119; i >= 0; i-- {
			if i%7 == k {
				wantIdx = i
				break
			}
		}
		if v, ok := get(t, tx, tbl2, key); !ok || v != fmt.Sprintf("v%d", wantIdx) {
			t.Fatalf("%s = %q, %v (want v%d)", key, v, ok, wantIdx)
		}
	}
	tx.Commit()
	// Historical reads work after recovery: lazy timestamping re-runs from
	// the PTT entries restored by commit-record redo.
	old, _ := db2.BeginAsOfTS(times[30])
	if v, ok := get(t, old, tbl2, fmt.Sprintf("k%02d", 30%7)); !ok || v != "v30" {
		t.Fatalf("as-of after crash = %q, %v", v, ok)
	}
	old.Commit()
}

func TestCrashRecoveryUncommittedRolledBack(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(nil)
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	set(t, db, tbl, "committed", "yes")

	// An in-flight transaction whose writes reached the (flushed) log but
	// never committed.
	tx, _ := db.Begin(Serializable)
	tx.Set(tbl, []byte("committed"), []byte("loser-overwrite"))
	tx.Set(tbl, []byte("loser-key"), []byte("loser"))
	db.log.Flush() // force the writes into the durable log
	db.crash()

	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, _ := db2.Table("t")
	tx2, _ := db2.Begin(Serializable)
	if v, ok := get(t, tx2, tbl2, "committed"); !ok || v != "yes" {
		t.Fatalf("committed = %q, %v", v, ok)
	}
	if _, ok := get(t, tx2, tbl2, "loser-key"); ok {
		t.Fatal("loser write survived recovery")
	}
	tx2.Commit()
	hist, _ := db2.History(tbl2, []byte("committed"))
	if len(hist) != 1 {
		t.Fatalf("history polluted by loser: %+v", hist)
	}
}

func TestCrashAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(nil)
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	for i := 0; i < 60; i++ {
		set(t, db, tbl, fmt.Sprintf("k%d", i%5), fmt.Sprintf("pre-%d", i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mid := db.Now()
	for i := 0; i < 60; i++ {
		set(t, db, tbl, fmt.Sprintf("k%d", i%5), fmt.Sprintf("post-%d", i))
	}
	db.crash()

	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, _ := db2.Table("t")
	tx, _ := db2.Begin(Serializable)
	if v, ok := get(t, tx, tbl2, "k4"); !ok || v != "post-59" {
		t.Fatalf("k4 = %q, %v", v, ok)
	}
	tx.Commit()
	old, _ := db2.BeginAsOfTS(mid)
	if v, ok := get(t, old, tbl2, "k4"); !ok || v != "pre-59" {
		t.Fatalf("as-of mid k4 = %q, %v", v, ok)
	}
	old.Commit()
}

func TestRepeatedCrashes(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(nil)
	total := 0
	for round := 0; round < 4; round++ {
		db, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		var tbl *Table
		if round == 0 {
			tbl, err = db.CreateTable("t", TableOptions{Immortal: true})
		} else {
			tbl, err = db.Table("t")
		}
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := 0; i < 30; i++ {
			set(t, db, tbl, fmt.Sprintf("k%d", total%6), fmt.Sprintf("v%d", total))
			total++
		}
		db.crash()
	}
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, _ := db.Table("t")
	tx, _ := db.Begin(Serializable)
	n := 0
	tx.Scan(tbl, nil, nil, func(k, v []byte) bool { n++; return true })
	if n != 6 {
		t.Fatalf("scan after %d crashes = %d keys", 4, n)
	}
	if v, ok := get(t, tx, tbl, "k5"); !ok || v != fmt.Sprintf("v%d", total-1) {
		t.Fatalf("k5 = %q, %v", v, ok)
	}
	tx.Commit()
	// Full history intact across all crashes.
	hist, err := db.History(tbl, []byte("k0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 20 { // 120 writes over 6 keys
		t.Fatalf("history of k0 = %d versions, want 20", len(hist))
	}
}

func TestPTTGarbageCollection(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	for i := 0; i < 50; i++ {
		set(t, db, tbl, fmt.Sprintf("k%d", i%5), fmt.Sprintf("v%d", i))
	}
	if db.Stats().PTTEntries == 0 {
		t.Fatal("no PTT entries after 50 immortal commits")
	}
	// Checkpoint 1 flushes stamped pages and advances the watermark;
	// checkpoint 2 collects entries completed before checkpoint 1.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	stats := db.Stats()
	if stats.PTTEntries > 5 {
		t.Fatalf("PTT entries after GC = %d (deletes=%d)", stats.PTTEntries, stats.Stamp.PTTDeletes)
	}
	if stats.Stamp.PTTDeletes == 0 {
		t.Fatal("GC deleted nothing")
	}
}

func TestPTTGCDisabled(t *testing.T) {
	db, _ := openTestDB(t, func(o *Options) { o.DisablePTTGC = true })
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	for i := 0; i < 50; i++ {
		set(t, db, tbl, "k", fmt.Sprintf("v%d", i))
	}
	db.Checkpoint()
	db.Checkpoint()
	if n := db.Stats().PTTEntries; n != 50 {
		t.Fatalf("PTT entries with GC off = %d, want 50", n)
	}
}

func TestEagerTimestampingMode(t *testing.T) {
	db, _ := openTestDB(t, func(o *Options) { o.EagerTimestamping = true })
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	var times []Timestamp
	for i := 0; i < 60; i++ {
		times = append(times, set(t, db, tbl, fmt.Sprintf("k%d", i%4), fmt.Sprintf("v%d", i)))
	}
	// Eager mode never populates the PTT.
	if n := db.Stats().PTTEntries; n != 0 {
		t.Fatalf("eager mode PTT entries = %d", n)
	}
	// Queries behave identically.
	old, _ := db.BeginAsOfTS(times[17])
	if v, ok := get(t, old, tbl, fmt.Sprintf("k%d", 17%4)); !ok || v != "v17" {
		t.Fatalf("eager as-of = %q, %v", v, ok)
	}
	old.Commit()
	hist, _ := db.History(tbl, []byte("k0"))
	if len(hist) != 15 {
		t.Fatalf("eager history = %d versions", len(hist))
	}
	for _, h := range hist {
		if h.Pending {
			t.Fatal("eager mode left a pending version")
		}
	}
}

func TestEagerModeCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(func(o *Options) { o.EagerTimestamping = true })
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	var mid Timestamp
	for i := 0; i < 40; i++ {
		ts := set(t, db, tbl, "k", fmt.Sprintf("v%d", i))
		if i == 20 {
			mid = ts
		}
	}
	db.crash()
	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, _ := db2.Table("t")
	// Eager stamps were logged (TypeStamp) and must be redone.
	old, _ := db2.BeginAsOfTS(mid)
	if v, ok := get(t, old, tbl2, "k"); !ok || v != "v20" {
		t.Fatalf("eager crash as-of = %q, %v", v, ok)
	}
	old.Commit()
}

func TestTSBIndexMode(t *testing.T) {
	db, _ := openTestDB(t, func(o *Options) { o.HistoricalIndex = IndexTSB })
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	var times []Timestamp
	for i := 0; i < 200; i++ {
		times = append(times, set(t, db, tbl, fmt.Sprintf("k%d", i%6), fmt.Sprintf("v%d", i)))
	}
	for probe := 0; probe < 200; probe += 13 {
		old, _ := db.BeginAsOfTS(times[probe])
		key := fmt.Sprintf("k%d", probe%6)
		if v, ok := get(t, old, tbl, key); !ok || v != fmt.Sprintf("v%d", probe) {
			t.Fatalf("TSB as-of %d: %q, %v", probe, v, ok)
		}
		old.Commit()
	}
}

func TestCheckpointEveryN(t *testing.T) {
	db, _ := openTestDB(t, func(o *Options) { o.CheckpointEveryN = 10 })
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	for i := 0; i < 35; i++ {
		set(t, db, tbl, "k", fmt.Sprintf("v%d", i))
	}
	if db.log.Checkpoint() == 0 {
		t.Fatal("no automatic checkpoint after 35 txns with CheckpointEveryN=10")
	}
}

func TestTxDoneErrors(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	tx, _ := db.Begin(Serializable)
	tx.Commit()
	if err := tx.Set(tbl, []byte("k"), []byte("v")); !errors.Is(err, ErrTxDone) {
		t.Fatalf("set after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("rollback after commit: %v", err)
	}
	if err := tx.Set(tbl, nil, []byte("v")); !errors.Is(err, ErrTxDone) {
		t.Fatalf("empty key error order: %v", err)
	}
}

func TestTimestampOrderAgreesWithCommitOrder(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	var prev Timestamp
	for i := 0; i < 200; i++ {
		ts := set(t, db, tbl, "k", fmt.Sprintf("v%d", i))
		if !ts.After(prev) {
			t.Fatalf("commit %d: timestamp %v not after %v", i, ts, prev)
		}
		prev = ts
	}
	// Many commits share a wall tick (AutoEvery=3): sequence numbers did the
	// disambiguation.
	hist, _ := db.History(tbl, []byte("k"))
	sharedTick := false
	for i := 1; i < len(hist); i++ {
		if hist[i].TS.Wall == hist[i-1].TS.Wall {
			sharedTick = true
			break
		}
	}
	if !sharedTick {
		t.Fatal("test clock never produced same-tick commits; SN path untested")
	}
}

func TestStatsPopulated(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	for i := 0; i < 30; i++ {
		set(t, db, tbl, fmt.Sprintf("k%d", i), "v")
	}
	tx, _ := db.Begin(Serializable)
	tx.Set(tbl, []byte("x"), []byte("y"))
	tx.Rollback()
	s := db.Stats()
	if s.Commits != 30 || s.Aborts != 1 {
		t.Fatalf("commits=%d aborts=%d", s.Commits, s.Aborts)
	}
	if s.Stamp.PTTPuts == 0 || s.LogBytes == 0 {
		t.Fatalf("stats empty: %+v", s)
	}
}

func TestSameTxnOverwriteCollapsesVersions(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	set(t, db, tbl, "k", "committed")

	tx, _ := db.Begin(Serializable)
	for i := 0; i < 500; i++ { // must not overflow any page
		if err := tx.Set(tbl, []byte("k"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Delete(tbl, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Set(tbl, []byte("k"), []byte("final")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// One transaction contributes exactly one version, no matter how many
	// times it rewrote the record.
	hist, _ := db.History(tbl, []byte("k"))
	if len(hist) != 2 {
		t.Fatalf("history = %d versions, want 2", len(hist))
	}
	if string(hist[0].Value) != "final" {
		t.Fatalf("newest = %q", hist[0].Value)
	}
}

func TestSameTxnOverwriteRollback(t *testing.T) {
	db, _ := openTestDB(t, nil)
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	set(t, db, tbl, "k", "committed")

	tx, _ := db.Begin(Serializable)
	tx.Set(tbl, []byte("k"), []byte("a"))
	tx.Set(tbl, []byte("k"), []byte("b"))
	tx.Delete(tbl, []byte("k"))
	tx.Set(tbl, []byte("k"), []byte("c"))
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := db.Begin(Serializable)
	if v, ok := get(t, tx2, tbl, "k"); !ok || v != "committed" {
		t.Fatalf("k after rollback = %q, %v", v, ok)
	}
	tx2.Commit()
	hist, _ := db.History(tbl, []byte("k"))
	if len(hist) != 1 {
		t.Fatalf("history after rollback = %d versions", len(hist))
	}
}

func TestSameTxnOverwriteCrashUndo(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(nil)
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
	set(t, db, tbl, "k", "committed")
	tx, _ := db.Begin(Serializable)
	tx.Set(tbl, []byte("k"), []byte("a"))
	tx.Set(tbl, []byte("k"), []byte("b"))
	db.log.Flush()
	db.crash()

	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, _ := db2.Table("t")
	tx2, _ := db2.Begin(Serializable)
	if v, ok := get(t, tx2, tbl2, "k"); !ok || v != "committed" {
		t.Fatalf("k after crash undo = %q, %v", v, ok)
	}
	tx2.Commit()
}
